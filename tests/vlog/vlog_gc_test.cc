#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace storage {
namespace {

class VlogGcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.write_buffer_size = 64 * 1024;
    options_.value_separation = true;
    options_.min_value_size = 64;
    options_.vlog_file_size = 8 * 1024;  // small: many sealed files
    options_.background_vlog_gc = false;  // tests drive GC explicitly
    Open();
  }

  void Open() {
    auto result = KVStore::Open(options_, "/db");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    store_ = std::move(result).MoveValueUnsafe();
  }

  static std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  static std::string Value(int i, int version) {
    std::string v = "v" + std::to_string(version) + ":" + Key(i) + ":";
    v.append(180, static_cast<char>('a' + version));
    return v;
  }

  std::string Get(const std::string& key) {
    auto r = store_->Get(ReadOptions(), key);
    return r.ok() ? r.ValueOrDie() : "NOT_FOUND";
  }

  uint64_t CountVlogFilesOnDisk() {
    auto listing = env_->ListDir("/db");
    EXPECT_TRUE(listing.ok());
    uint64_t n = 0;
    for (const auto& name : listing.ValueOrDie()) {
      if (name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".vlog") == 0) {
        ++n;
      }
    }
    return n;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<KVStore> store_;
};

// Satellite requirement: overwrite/delete 90% of keys, run GC, and assert
// the reclaimed-byte counter and that every survivor stays readable.
TEST_F(VlogGcTest, ReclaimsDeadBytesAndKeepsSurvivorsReadable) {
  const int kN = 400;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  const uint64_t round1_bytes = store_->GetStats().vlog_appended_bytes;
  ASSERT_GT(round1_bytes, 0u);

  // Kill 90% of round 1: keys % 10 == 0 survive, half of the dead are
  // overwritten, half deleted.
  for (int i = 0; i < kN; ++i) {
    if (i % 10 == 0) continue;
    if (i % 2 == 0) {
      ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 2)).ok());
    } else {
      ASSERT_TRUE(store_->Delete(WriteOptions(), Key(i)).ok());
    }
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  ASSERT_TRUE(store_->CompactAll().ok());

  obs::Counter* gc_reclaimed_metric =
      obs::MetricsRegistry::Global().GetCounter(
          "storage.vlog.gc_reclaimed_bytes");
  const uint64_t metric_before = gc_reclaimed_metric->Value();

  uint64_t reclaimed = 0;
  ASSERT_TRUE(store_->GarbageCollect(0, &reclaimed).ok());

  // At least ~90% of round 1 is dead; allow slack for records straddling
  // the still-active file and for pointer re-encoding.
  EXPECT_GE(reclaimed, round1_bytes * 8 / 10)
      << "round1_bytes=" << round1_bytes;
  auto stats = store_->GetStats();
  EXPECT_GE(stats.vlog_gc_reclaimed_bytes, reclaimed);
  EXPECT_GE(gc_reclaimed_metric->Value() - metric_before, reclaimed);

  for (int i = 0; i < kN; ++i) {
    if (i % 10 == 0) {
      ASSERT_EQ(Get(Key(i)), Value(i, 1)) << Key(i);
    } else if (i % 2 == 0) {
      ASSERT_EQ(Get(Key(i)), Value(i, 2)) << Key(i);
    } else {
      ASSERT_EQ(Get(Key(i)), "NOT_FOUND") << Key(i);
    }
  }

  // GC is durable: survivors still resolve after a reopen.
  store_.reset();
  Open();
  for (int i = 0; i < kN; i += 10) {
    ASSERT_EQ(Get(Key(i)), Value(i, 1)) << Key(i);
  }
}

TEST_F(VlogGcTest, GcIsNoOpWithoutValueSeparation) {
  Options plain;
  plain.env = env_.get();
  auto result = KVStore::Open(plain, "/plain");
  ASSERT_TRUE(result.ok());
  auto store = std::move(result).MoveValueUnsafe();
  ASSERT_TRUE(store->Put(WriteOptions(), "k", std::string(500, 'v')).ok());
  uint64_t reclaimed = 123;
  ASSERT_TRUE(store->GarbageCollect(0, &reclaimed).ok());
  EXPECT_EQ(reclaimed, 0u);
}

TEST_F(VlogGcTest, ChunkedGcProcessesTailIncrementally) {
  const int kN = 300;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 2)).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());

  // A 1-byte chunk processes exactly one tail file per call.
  const uint64_t files_before = store_->GetStats().vlog_files;
  ASSERT_GT(files_before, 2u);
  uint64_t reclaimed = 0;
  ASSERT_TRUE(store_->GarbageCollect(1, &reclaimed).ok());
  EXPECT_EQ(store_->GetStats().vlog_files, files_before - 1);

  // Draining the whole tail leaves only the active file plus whatever the
  // GC re-puts rolled into.
  ASSERT_TRUE(store_->GarbageCollect(0, &reclaimed).ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(Get(Key(i)), Value(i, 2)) << Key(i);
  }
}

TEST_F(VlogGcTest, PhysicalDeletionDeferredWhileIteratorOpen) {
  const int kN = 200;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 2)).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());

  auto iter = store_->NewIterator(ReadOptions());
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());

  const uint64_t on_disk_before = CountVlogFilesOnDisk();
  uint64_t reclaimed = 0;
  ASSERT_TRUE(store_->GarbageCollect(0, &reclaimed).ok());
  ASSERT_GT(reclaimed, 0u);

  // Logically reclaimed, physically still present: the open iterator may
  // hold pointers into the old files.
  EXPECT_GE(CountVlogFilesOnDisk(), on_disk_before);

  // The iterator still materializes every value it sees.
  int rows = 0;
  for (; iter->Valid(); iter->Next(), ++rows) {
    EXPECT_EQ(iter->value().size(), Value(0, 2).size());
  }
  EXPECT_TRUE(iter->status().ok()) << iter->status().ToString();
  EXPECT_EQ(rows, kN);

  iter.reset();  // last reader gone -> deferred deletions run
  EXPECT_LT(CountVlogFilesOnDisk(), on_disk_before);
}

TEST_F(VlogGcTest, PhysicalDeletionDeferredWhileSnapshotOpen) {
  const int kN = 200;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 2)).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());

  SequenceNumber snapshot = store_->GetSnapshot();
  const uint64_t on_disk_before = CountVlogFilesOnDisk();
  uint64_t reclaimed = 0;
  ASSERT_TRUE(store_->GarbageCollect(0, &reclaimed).ok());
  ASSERT_GT(reclaimed, 0u);
  EXPECT_GE(CountVlogFilesOnDisk(), on_disk_before);

  store_->ReleaseSnapshot(snapshot);
  EXPECT_LT(CountVlogFilesOnDisk(), on_disk_before);
}

// Background pacing: with background_vlog_gc on, compaction's dead-byte
// accounting alone must eventually trigger GC of a fully-dead tail, with no
// explicit GarbageCollect call.
TEST_F(VlogGcTest, BackgroundGcTriggersAfterCompaction) {
  options_.background_vlog_gc = true;
  options_.vlog_gc_dead_ratio = 0.3;
  store_.reset();
  ASSERT_TRUE(KVStore::Destroy(options_, "/db").ok());
  Open();

  const int kN = 300;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), Value(i, 2)).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  // Compaction drops the shadowed round-1 pointers and credits their vlog
  // files with dead bytes, making the tail eligible.
  ASSERT_TRUE(store_->CompactAll().ok());
  store_->WaitForBackgroundWork();

  auto stats = store_->GetStats();
  EXPECT_GT(stats.vlog_gc_reclaimed_bytes, 0u)
      << "background GC never ran on a fully-dead tail";
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(Get(Key(i)), Value(i, 2)) << Key(i);
  }
}

// ---------------------------------------------------------------------------
// Scrub integration: corruption in vlog files is detected by the integrity
// walk, counted under the scrub byte metric, and quarantined.

class VlogScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    fenv_ = std::make_unique<FaultInjectionEnv>(base_env_.get(), 77);
    options_.env = fenv_.get();
    options_.write_buffer_size = 64 * 1024;
    options_.value_separation = true;
    options_.min_value_size = 64;
    options_.vlog_file_size = 8 * 1024;
    options_.background_vlog_gc = false;
    auto result = KVStore::Open(options_, "/db");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    store_ = std::move(result).MoveValueUnsafe();
  }

  static std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultInjectionEnv> fenv_;
  Options options_;
  std::unique_ptr<KVStore> store_;
};

TEST_F(VlogScrubTest, VerifyIntegrityQuarantinesCorruptVlogFile) {
  const int kN = 300;
  const std::string value(200, 'v');
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  ASSERT_GT(store_->GetStats().vlog_files, 2u);

  obs::Counter* scrub_bytes = obs::MetricsRegistry::Global().GetCounter(
      "storage.scrub.bytes_checked");
  const uint64_t scrub_bytes_before = scrub_bytes->Value();

  auto victim = fenv_->CorruptRandomFile("/db", FileClass::kVlog, 64);
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();
  const std::string victim_path = victim.ValueOrDie();
  EXPECT_TRUE(store_->IsLiveVlogFile(victim_path));

  ScrubReport report;
  ASSERT_TRUE(store_->VerifyIntegrity(&report).ok());
  EXPECT_GE(report.corrupt_files, 1u);
  EXPECT_GE(report.quarantined_files, 1u);
  ASSERT_FALSE(report.corrupt_paths.empty());
  EXPECT_NE(report.corrupt_paths[0].find(".vlog"), std::string::npos);

  // Satellite: vlog checksum-walk bytes are part of the scrub byte budget.
  EXPECT_GT(scrub_bytes->Value() - scrub_bytes_before, 0u);

  // The quarantined file left the live set and its keys no longer resolve,
  // while keys in other vlog files still do.
  EXPECT_FALSE(store_->IsLiveVlogFile(victim_path));
  int unreadable = 0, readable = 0;
  for (int i = 0; i < kN; ++i) {
    auto r = store_->Get(ReadOptions(), Key(i));
    if (r.ok()) {
      EXPECT_EQ(r.ValueOrDie(), value);
      ++readable;
    } else {
      ++unreadable;
    }
  }
  EXPECT_GT(unreadable, 0);
  EXPECT_GT(readable, 0);

  // A second pass finds nothing new.
  ScrubReport second;
  ASSERT_TRUE(store_->VerifyIntegrity(&second).ok());
  EXPECT_EQ(second.corrupt_files, 0u);
  EXPECT_EQ(second.quarantined_files, 0u);
  EXPECT_EQ(store_->GetStats().quarantined_files, 1u);
}

TEST_F(VlogScrubTest, DereferenceOfCorruptRecordQuarantinesFile) {
  const std::string value(200, 'v');
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());

  auto victim = fenv_->CorruptRandomFile("/db", FileClass::kVlog, 64);
  ASSERT_TRUE(victim.ok());

  // Reads hit the damage before any scrub runs: the deref fails closed and
  // the file is quarantined so it never serves another read.
  int failures = 0;
  for (int i = 0; i < 40; ++i) {
    auto r = store_->Get(ReadOptions(), Key(i));
    if (!r.ok()) ++failures;
  }
  EXPECT_GT(failures, 0);
  EXPECT_FALSE(store_->IsLiveVlogFile(victim.ValueOrDie()));
  EXPECT_GE(store_->GetStats().quarantined_files, 1u);
}

TEST_F(VlogScrubTest, GcQuarantinesCorruptTailInsteadOfDeleting) {
  const std::string value(200, 'v');
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  ASSERT_GT(store_->GetStats().vlog_files, 2u);

  auto victim = fenv_->CorruptRandomFile("/db", FileClass::kVlog, 64);
  ASSERT_TRUE(victim.ok());

  // GC scans every sealed file from the tail; hitting the corrupt one must
  // quarantine it (preserving the evidence) rather than resurrect garbage
  // or delete it as "collected".
  uint64_t reclaimed = 0;
  Status s = store_->GarbageCollect(0, &reclaimed);
  if (store_->IsLiveVlogFile(victim.ValueOrDie())) {
    // The victim was the still-active file, which GC does not walk; the
    // pass legitimately succeeds then.
    EXPECT_TRUE(s.ok()) << s.ToString();
  } else {
    EXPECT_GE(store_->GetStats().quarantined_files, 1u);
  }
  // Either way the store stays usable.
  ASSERT_TRUE(store_->Put(WriteOptions(), "after", value).ok());
  auto r = store_->Get(ReadOptions(), "after");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), value);
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
