// Regression tests for hint-queue-depth gauge hygiene across the node
// lifecycle. Gauges are levels, not deltas: the timeline sampler reports
// whatever the gauge holds at each interval end, so any path that changes
// the real queue depth without updating the gauge (crash, restart,
// destruction, obs switched off) leaks a stale level into every later
// snapshot.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.h"
#include "obs/metrics.h"

namespace iotdb {
namespace cluster {
namespace {

ClusterOptions SmallClusterOptions() {
  ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 3;
  return options;
}

std::string Key(int i) { return "key" + std::to_string(i); }

obs::Gauge* TotalDepthGauge() {
  return obs::MetricsRegistry::Global().GetGauge(
      "cluster.hints.queue_depth");
}

obs::Gauge* NodeDepthGauge(int id) {
  return obs::MetricsRegistry::Global().GetGauge(
      "cluster.node" + std::to_string(id) + ".hint_queue_depth");
}

TEST(ObsGaugeLifecycleTest, DepthTracksBufferingAndReplay) {
  auto cluster = Cluster::Start(SmallClusterOptions()).MoveValueUnsafe();
  Client client(cluster.get());

  cluster->node(1)->SetDown(true);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  // rf == nodes, so every write hints for node 1 while it is down.
  EXPECT_EQ(TotalDepthGauge()->Value(), 40);
  EXPECT_EQ(NodeDepthGauge(1)->Value(), 40);
  EXPECT_EQ(NodeDepthGauge(0)->Value(), 0);

  ASSERT_TRUE(cluster->RestartNode(1).ok());
  EXPECT_FALSE(cluster->node(1)->is_down());
  EXPECT_EQ(TotalDepthGauge()->Value(), 0);
  EXPECT_EQ(NodeDepthGauge(1)->Value(), 0);
}

TEST(ObsGaugeLifecycleTest, CrashDropsBufferedHintsAndResetsDepth) {
  auto cluster = Cluster::Start(SmallClusterOptions()).MoveValueUnsafe();
  Client client(cluster.get());

  cluster->node(1)->SetDown(true);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  ASSERT_EQ(NodeDepthGauge(1)->Value(), 25);

  // The crash makes those hints dead weight (rejoin re-copies anyway);
  // the gauge must drop with them instead of haunting the timeline for as
  // long as the node stays down.
  ASSERT_TRUE(cluster->CrashNode(1).ok());
  EXPECT_EQ(TotalDepthGauge()->Value(), 0);
  EXPECT_EQ(NodeDepthGauge(1)->Value(), 0);

  // Writes while crashed count as skipped/hinted in the stats but must not
  // re-grow the queue (the buffer is due for a full re-copy).
  for (int i = 25; i < 50; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  EXPECT_EQ(TotalDepthGauge()->Value(), 0);
  EXPECT_GT(cluster->GetFaultRecoveryStats().hinted_kvps, 0u);

  ASSERT_TRUE(cluster->RestartNode(1).ok());
  EXPECT_EQ(TotalDepthGauge()->Value(), 0);
  // The re-copy converged: the restarted node holds the crash-era writes.
  auto r = cluster->node(1)->Get(Key(30));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ObsGaugeLifecycleTest, GaugeUpdatesEvenWhileObsDisabled) {
  auto cluster = Cluster::Start(SmallClusterOptions()).MoveValueUnsafe();
  Client client(cluster.get());

  cluster->node(2)->SetDown(true);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  ASSERT_EQ(NodeDepthGauge(2)->Value(), 10);

  // Toggling the obs switch must not freeze the level: the depth keeps
  // moving with reality so a later snapshot never reports a stale queue.
  obs::SetEnabled(false);
  for (int i = 10; i < 15; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  EXPECT_EQ(NodeDepthGauge(2)->Value(), 15);
  obs::SetEnabled(true);

  ASSERT_TRUE(cluster->RestartNode(2).ok());
  EXPECT_EQ(NodeDepthGauge(2)->Value(), 0);
}

TEST(ObsGaugeLifecycleTest, DestructorZeroesGaugesForTheNextCluster) {
  {
    auto cluster = Cluster::Start(SmallClusterOptions()).MoveValueUnsafe();
    Client client(cluster.get());
    cluster->node(0)->SetDown(true);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(client.Put(Key(i), "v").ok());
    }
    ASSERT_GT(TotalDepthGauge()->Value(), 0);
    ASSERT_GT(NodeDepthGauge(0)->Value(), 0);
    // Cluster torn down with hints still buffered.
  }
  // The gauges are process-global; a bench running several clusters in one
  // process must not see the previous cluster's ghost depth.
  EXPECT_EQ(TotalDepthGauge()->Value(), 0);
  EXPECT_EQ(NodeDepthGauge(0)->Value(), 0);
}

}  // namespace
}  // namespace cluster
}  // namespace iotdb
