// End-to-end corruption resilience: bit-rot injected into one replica is
// detected by the scrub, the damaged file is quarantined, reads are
// transparently re-served from healthy replicas, and a shard re-copy
// restores full replication without downtime.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "storage/fault_env.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace cluster {
namespace {

ClusterOptions CorruptibleClusterOptions(int nodes) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.replication_factor = 3;
  options.storage_options.write_buffer_size = 64 * 1024;
  options.enable_fault_injection = true;
  options.fault_seed = 21;
  return options;
}

std::string Key(int i) { return "key" + std::to_string(i); }
std::string Value(int i) { return "value" + std::to_string(i); }

// Routes "<sensor>#<seq>" keys by their sensor prefix.
Slice SensorShardKey(const Slice& key) {
  const void* hash = memchr(key.data(), '#', key.size());
  if (hash == nullptr) return key;
  return Slice(key.data(),
               static_cast<size_t>(static_cast<const char*>(hash) -
                                   key.data()));
}

TEST(CorruptionResilienceTest, ScrubQuarantineReadRepairAndRecopy) {
  const int kKeys = 300;
  auto cluster =
      Cluster::Start(CorruptibleClusterOptions(3)).MoveValueUnsafe();
  Client client(cluster.get());
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(client.Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(cluster->FlushAll().ok());

  // Bit-rot one of node 0's SSTables, then scrub that store.
  Node* victim = cluster->node(0);
  auto damaged = cluster->fault_env()->CorruptRandomFile(
      victim->data_dir(), storage::FileClass::kSSTable, 32);
  ASSERT_TRUE(damaged.ok()) << damaged.status().ToString();

  storage::ScrubReport report;
  ASSERT_TRUE(victim->store()->VerifyIntegrity(&report).ok());
  ASSERT_EQ(report.quarantined_files, 1u);
  EXPECT_TRUE(victim->under_repair());
  EXPECT_EQ(victim->files_quarantined(), 1u);
  std::vector<int> pending = cluster->PendingRepairNodes();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], 0);

  // Every key still reads back correctly: the quarantined replica is
  // fenced, so the client fails over to healthy replicas (read-repair).
  for (int i = 0; i < kKeys; ++i) {
    auto r = client.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    ASSERT_EQ(r.ValueOrDie(), Value(i)) << Key(i);
  }
  // rf == nodes, so node 0 is a replica for every key and primary for some:
  // those primary reads were re-served by replicas.
  FaultRecoveryStats stats = cluster->GetFaultRecoveryStats();
  EXPECT_EQ(stats.corrupt_files_quarantined, 1u);
  EXPECT_GT(stats.read_repairs, 0u);

  // Ingest keeps working while the node is under repair (writes are not
  // fenced; only its reads are).
  for (int i = kKeys; i < kKeys + 100; ++i) {
    ASSERT_TRUE(client.Put(Key(i), Value(i)).ok());
  }

  // Repair: shard re-copy from healthy replicas heals the node and lifts
  // the read fence.
  ASSERT_TRUE(cluster->RunPendingRepairs().ok());
  EXPECT_FALSE(victim->under_repair());
  EXPECT_TRUE(cluster->PendingRepairNodes().empty());
  stats = cluster->GetFaultRecoveryStats();
  EXPECT_EQ(stats.corruption_repairs, 1u);
  EXPECT_GT(stats.recopied_kvps, 0u);

  // 3/3 replicas hold every key again: node 0 answers all of them locally,
  // and its store verifies clean.
  for (int i = 0; i < kKeys + 100; ++i) {
    auto r = victim->Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie(), Value(i)) << Key(i);
  }
  storage::ScrubReport healed;
  ASSERT_TRUE(victim->store()->VerifyIntegrity(&healed).ok());
  EXPECT_EQ(healed.corrupt_files, 0u);

  EXPECT_NE(cluster->Describe().find("integrity:"), std::string::npos);
}

// Same drill against the value log: with key-value separation on, bit-rot
// in a .vlog file must be detected by the scrub, quarantined, fenced, and
// healed by a shard re-copy exactly like a rotten SSTable.
TEST(CorruptionResilienceTest, VlogQuarantineReadRepairAndRecopy) {
  const int kKeys = 300;
  ClusterOptions options = CorruptibleClusterOptions(3);
  options.storage_options.value_separation = true;
  options.storage_options.min_value_size = 256;
  options.storage_options.vlog_file_size = 16 * 1024;
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  Client client(cluster.get());

  auto big_value = [](int i) {
    std::string v = Value(i) + ":";
    v.append(1000, 'p');  // the TPCx-IoT ~1 KB payload: separated
    return v;
  };
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(client.Put(Key(i), big_value(i)).ok());
  }
  ASSERT_TRUE(cluster->FlushAll().ok());

  Node* victim = cluster->node(0);
  ASSERT_GT(victim->store()->GetStats().vlog_files, 1u);
  auto damaged = cluster->fault_env()->CorruptRandomFile(
      victim->data_dir(), storage::FileClass::kVlog, 32);
  ASSERT_TRUE(damaged.ok()) << damaged.status().ToString();

  storage::ScrubReport report;
  ASSERT_TRUE(victim->store()->VerifyIntegrity(&report).ok());
  ASSERT_EQ(report.quarantined_files, 1u);
  ASSERT_FALSE(report.corrupt_paths.empty());
  EXPECT_NE(report.corrupt_paths[0].find(".vlog"), std::string::npos);
  EXPECT_TRUE(victim->under_repair());
  std::vector<int> pending = cluster->PendingRepairNodes();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], 0);

  // Reads fail over to healthy replicas while the victim is fenced.
  for (int i = 0; i < kKeys; ++i) {
    auto r = client.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    ASSERT_EQ(r.ValueOrDie(), big_value(i)) << Key(i);
  }
  FaultRecoveryStats stats = cluster->GetFaultRecoveryStats();
  EXPECT_EQ(stats.corrupt_files_quarantined, 1u);
  EXPECT_GT(stats.read_repairs, 0u);

  // Shard re-copy heals the replica; the re-copied values separate into
  // fresh vlog files and the store verifies clean.
  ASSERT_TRUE(cluster->RunPendingRepairs().ok());
  EXPECT_FALSE(victim->under_repair());
  stats = cluster->GetFaultRecoveryStats();
  EXPECT_EQ(stats.corruption_repairs, 1u);
  EXPECT_GT(stats.recopied_kvps, 0u);

  for (int i = 0; i < kKeys; ++i) {
    auto r = victim->Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie(), big_value(i)) << Key(i);
  }
  storage::ScrubReport healed;
  ASSERT_TRUE(victim->store()->VerifyIntegrity(&healed).ok());
  EXPECT_EQ(healed.corrupt_files, 0u);
}

TEST(CorruptionResilienceTest, ScanFailsOverFromUnderRepairReplica) {
  ClusterOptions options = CorruptibleClusterOptions(3);
  options.shard_key_fn = SensorShardKey;
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  Client client(cluster.get());
  // One shard: the sensor prefix routes every row to one replica set.
  const std::string shard = "sensor-a";
  for (int i = 0; i < 50; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "%s#%04d", shard.c_str(), i);
    ASSERT_TRUE(client.Put(key, Value(i)).ok());
  }
  ASSERT_TRUE(cluster->FlushAll().ok());

  int primary = cluster->PrimaryNodeFor(shard + "#0000");
  Node* victim = cluster->node(primary);
  ASSERT_TRUE(cluster->fault_env()
                  ->CorruptRandomFile(victim->data_dir(),
                                      storage::FileClass::kSSTable, 16)
                  .ok());
  storage::ScrubReport report;
  ASSERT_TRUE(victim->store()->VerifyIntegrity(&report).ok());
  ASSERT_EQ(report.quarantined_files, 1u);

  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(client.Scan(shard, shard + "#", shard + "$",
                          /*limit=*/0, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 50u);
  EXPECT_GT(cluster->GetFaultRecoveryStats().read_repairs, 0u);

  ASSERT_TRUE(cluster->RunPendingRepairs().ok());
  EXPECT_FALSE(victim->under_repair());
}

TEST(CorruptionResilienceTest, RestartOfUnderRepairNodeForcesRecopy) {
  auto cluster =
      Cluster::Start(CorruptibleClusterOptions(3)).MoveValueUnsafe();
  Client client(cluster.get());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(cluster->FlushAll().ok());

  Node* victim = cluster->node(1);
  ASSERT_TRUE(cluster->fault_env()
                  ->CorruptRandomFile(victim->data_dir(),
                                      storage::FileClass::kSSTable, 16)
                  .ok());
  storage::ScrubReport report;
  ASSERT_TRUE(victim->store()->VerifyIntegrity(&report).ok());
  ASSERT_EQ(report.quarantined_files, 1u);
  ASSERT_TRUE(victim->under_repair());

  // The node bounces before RunPendingRepairs gets a chance: the restart
  // path must notice the pending repair and fall back to a full re-copy.
  victim->SetDown(true);
  ASSERT_TRUE(cluster->RestartNode(1).ok());
  EXPECT_FALSE(victim->under_repair());
  EXPECT_TRUE(cluster->PendingRepairNodes().empty());
  EXPECT_EQ(cluster->GetFaultRecoveryStats().corruption_repairs, 1u);

  for (int i = 0; i < 200; ++i) {
    auto r = victim->Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie(), Value(i));
  }
}

}  // namespace
}  // namespace cluster
}  // namespace iotdb
