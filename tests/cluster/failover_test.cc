// Node crash/recovery lifecycle: degraded-mode writes, hinted handoff,
// catch-up via hint replay or full shard re-copy, and deterministic fault
// injection across the cluster.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "storage/fault_env.h"

namespace iotdb {
namespace cluster {
namespace {

ClusterOptions FaultyClusterOptions(int nodes, uint64_t seed = 7) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.replication_factor = 3;
  options.storage_options.write_buffer_size = 64 * 1024;
  options.enable_fault_injection = true;
  options.fault_seed = seed;
  return options;
}

std::string Key(int i) { return "key" + std::to_string(i); }

TEST(FailoverTest, CrashLosesUnsyncedStateAndRestartRecovers) {
  auto cluster = Cluster::Start(FaultyClusterOptions(3)).MoveValueUnsafe();
  Client client(cluster.get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  // Quorum writes return before the slowest replica applies; quiesce so the
  // crash below cannot race an in-flight replica write.
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  ASSERT_TRUE(cluster->CrashNode(1).ok());
  EXPECT_TRUE(cluster->node(1)->is_down());
  EXPECT_FALSE(cluster->node(1)->is_running());
  EXPECT_TRUE(cluster->node(1)->crashed());
  EXPECT_GE(cluster->fault_env()->counters().crashes, 1u);
  EXPECT_NE(cluster->Describe().find("CRASHED"), std::string::npos);

  ASSERT_TRUE(cluster->RestartNode(1).ok());
  EXPECT_FALSE(cluster->node(1)->is_down());
  EXPECT_TRUE(cluster->node(1)->is_running());
  EXPECT_FALSE(cluster->node(1)->crashed());

  // rf == nodes: node 1 replicates every key, and after catch-up it must
  // hold all of them even though its own unsynced state died.
  for (int i = 0; i < 50; ++i) {
    auto r = cluster->node(1)->Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie(), "v" + std::to_string(i));
  }

  FaultRecoveryStats stats = cluster->GetFaultRecoveryStats();
  EXPECT_EQ(stats.node_crashes, 1u);
  EXPECT_EQ(stats.node_restarts, 1u);
  EXPECT_GT(stats.recopied_kvps, 0u);  // crash forces a full re-copy
}

TEST(FailoverTest, KillPrimaryMidLoadThenCatchUpConverges) {
  auto cluster = Cluster::Start(FaultyClusterOptions(3)).MoveValueUnsafe();
  Client client(cluster.get());
  const int victim = cluster->PrimaryNodeFor(Key(0));

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());
  ASSERT_TRUE(cluster->CrashNode(victim).ok());

  // The load continues while the primary of some shards is gone: every
  // write still succeeds (degraded) and hints/stats record the gap.
  for (int i = 200; i < 500; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v" + std::to_string(i)).ok())
        << "degraded write " << i << " failed";
  }
  EXPECT_GT(cluster->GetNodeStats(victim).skipped_replica_writes, 0u);
  EXPECT_GT(cluster->GetFaultRecoveryStats().hinted_kvps, 0u);

  ASSERT_TRUE(cluster->RestartNode(victim).ok());
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  // No stale or missing reads anywhere after convergence...
  for (int i = 0; i < 500; ++i) {
    auto r = client.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie(), "v" + std::to_string(i));
  }
  // ...and the restarted node's shard data equals its replicas' (rf ==
  // nodes, so every node must hold every key).
  for (int i = 0; i < 500; ++i) {
    auto r = cluster->node(victim)->Get(Key(i));
    ASSERT_TRUE(r.ok()) << "restarted node misses " << Key(i);
    EXPECT_EQ(r.ValueOrDie(), "v" + std::to_string(i));
  }
  EXPECT_EQ(cluster->node(victim)->store()->CountKeysSlow(),
            cluster->node((victim + 1) % 3)->store()->CountKeysSlow());
}

TEST(FailoverTest, HintsReplayOnRestartWithoutCrash) {
  // SetDown + RestartNode: the store never died, so pure hint replay (no
  // re-copy) reconverges the node.
  ClusterOptions options = FaultyClusterOptions(3);
  options.enable_fault_injection = false;
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  Client client(cluster.get());

  cluster->node(1)->SetDown(true);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  ASSERT_TRUE(cluster->RestartNode(1).ok());
  EXPECT_FALSE(cluster->node(1)->is_down());

  FaultRecoveryStats stats = cluster->GetFaultRecoveryStats();
  EXPECT_EQ(stats.hinted_kvps, 100u);
  EXPECT_EQ(stats.hint_replayed_kvps, 100u);
  EXPECT_EQ(stats.recopied_kvps, 0u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster->node(1)->Get(Key(i)).ok()) << Key(i);
  }
}

TEST(FailoverTest, HintOverflowFallsBackToFullRecopy) {
  ClusterOptions options = FaultyClusterOptions(3);
  options.enable_fault_injection = false;
  options.max_hints_per_node = 10;
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  Client client(cluster.get());

  cluster->node(2)->SetDown(true);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  ASSERT_TRUE(cluster->RestartNode(2).ok());

  FaultRecoveryStats stats = cluster->GetFaultRecoveryStats();
  EXPECT_EQ(stats.hint_overflows, 1u);
  EXPECT_GE(stats.recopied_kvps, 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster->node(2)->Get(Key(i)).ok()) << Key(i);
  }
}

TEST(FailoverTest, ConcurrentWritersSurviveCrashAndRestart) {
  auto cluster = Cluster::Start(FaultyClusterOptions(3)).MoveValueUnsafe();
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 300;

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&cluster, t] {
      Client client(cluster.get());
      for (int i = 0; i < kKeysPerThread; ++i) {
        std::string key = "w" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(client.Put(key, "v").ok()) << key;
      }
    });
  }
  // Crash and restart a node while the writers hammer the cluster.
  ASSERT_TRUE(cluster->CrashNode(0).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(cluster->RestartNode(0).ok());
  for (auto& w : writers) w.join();

  // Everything written (acked) must be readable, node 0 included.
  Client client(cluster.get());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      std::string key = "w" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE(client.Get(key).ok()) << key;
    }
  }
}

TEST(FailoverTest, SameFaultSeedSameInjectedFaultCounts) {
  // One node, rf = 1: every store IO runs on that node's channel delivery
  // thread, and the client awaits each write's ack before issuing the next,
  // so the fault env's seeded RNG sees one deterministic IO sequence. (With
  // several replicas the async fan-out interleaves store IO across mailbox
  // threads and the shared RNG stops being reproducible.) max_attempts is
  // raised so no write permanently fails — a hinted write would be replayed
  // by the background drain at a timing-dependent point in the sequence.
  auto run = [](uint64_t seed) {
    ClusterOptions options = FaultyClusterOptions(1, seed);
    options.replication_factor = 1;
    options.retry_policy.max_attempts = 10;
    auto cluster = Cluster::Start(options).MoveValueUnsafe();
    storage::FaultRates rates;
    rates.append_error = 0.2;
    cluster->fault_env()->SetRates(storage::FileClass::kWal, rates);
    Client client(cluster.get());
    for (int i = 0; i < 200; ++i) {
      client.Put(Key(i), "v").ok();  // failures are the point
    }
    return cluster->fault_env()->counters();
  };
  storage::FaultCounters a = run(5);
  storage::FaultCounters b = run(5);
  EXPECT_GT(a.append_errors, 0u);
  EXPECT_EQ(a.append_errors, b.append_errors);
  EXPECT_EQ(a.TotalInjectedErrors(), b.TotalInjectedErrors());
}

TEST(FailoverTest, RetryRecoversFromTransientFaults) {
  // With a low error rate and retries enabled, client ops succeed despite
  // injected WAL faults.
  auto cluster = Cluster::Start(FaultyClusterOptions(3)).MoveValueUnsafe();
  storage::FaultRates rates;
  rates.append_error = 0.05;
  cluster->fault_env()->SetRates(storage::FileClass::kWal, rates);
  Client client(cluster.get());
  int failures = 0;
  for (int i = 0; i < 300; ++i) {
    if (!client.Put(Key(i), "v").ok()) failures++;
  }
  // A write only fails when every replica exhausts its retries; with
  // rf = 3 and 3 attempts at 5% that is ~1e-12 per op.
  EXPECT_EQ(failures, 0);
  cluster->fault_env()->SetInjectionEnabled(false);
}

TEST(FailoverTest, OpDeadlineBoundsRetries) {
  ClusterOptions options = FaultyClusterOptions(1);
  options.replication_factor = 1;
  options.retry_policy.max_attempts = 100;
  options.retry_policy.initial_backoff_micros = 2000;
  options.retry_policy.backoff_multiplier = 1.0;
  options.retry_policy.jitter = 0;
  options.retry_policy.op_deadline_micros = 10000;  // 10 ms budget
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  storage::FaultRates rates;
  rates.append_error = 1.0;  // every attempt fails
  cluster->fault_env()->SetRates(storage::FileClass::kWal, rates);

  Client client(cluster.get());
  Status s = client.Put("k", "v");
  // The quorum coordinator converts deadline expiry into a typed
  // availability failure and counts it.
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  AvailabilityStats avail = cluster->GetAvailabilityStats();
  EXPECT_EQ(avail.deadline_exceeded, 1u);
  EXPECT_EQ(avail.writes_attempted,
            avail.writes_quorum_met + avail.writes_unavailable);
}

}  // namespace
}  // namespace cluster
}  // namespace iotdb
