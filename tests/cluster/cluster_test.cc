#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "iot/benchmark_driver.h"  // TpcxIotShardKey
#include "iot/kvp.h"

namespace iotdb {
namespace cluster {
namespace {

ClusterOptions SmallClusterOptions(int nodes, int rf = 3) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.replication_factor = rf;
  options.storage_options.write_buffer_size = 64 * 1024;
  return options;
}

TEST(ClusterTest, StartCreatesNodes) {
  auto cluster = Cluster::Start(SmallClusterOptions(4)).MoveValueUnsafe();
  EXPECT_EQ(cluster->num_nodes(), 4);
  EXPECT_EQ(cluster->effective_replication(), 3);
}

TEST(ClusterTest, EffectiveReplicationCapsAtNodeCount) {
  auto cluster = Cluster::Start(SmallClusterOptions(2)).MoveValueUnsafe();
  EXPECT_EQ(cluster->effective_replication(), 2);
}

TEST(ClusterTest, ZeroNodesRejected) {
  EXPECT_FALSE(Cluster::Start(SmallClusterOptions(0)).ok());
}

TEST(ClusterTest, ReplicaSetsAreDistinctNodes) {
  auto cluster = Cluster::Start(SmallClusterOptions(8)).MoveValueUnsafe();
  for (int i = 0; i < 100; ++i) {
    std::string key = "key" + std::to_string(i);
    std::vector<int> replicas = cluster->ReplicaNodesFor(key);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<int> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), 3u);
    EXPECT_EQ(replicas[0], cluster->PrimaryNodeFor(key));
  }
}

TEST(ClusterTest, PutReplicatesToAllReplicas) {
  auto cluster = Cluster::Start(SmallClusterOptions(5)).MoveValueUnsafe();
  Client client(cluster.get());
  ASSERT_TRUE(client.Put("mykey", "myvalue").ok());
  // Put returns at quorum; wait for the laggard replica's async apply.
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  int copies = 0;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    auto r = cluster->node(n)->store()->Get(storage::ReadOptions(), "mykey");
    if (r.ok() && r.ValueOrDie() == "myvalue") copies++;
  }
  EXPECT_EQ(copies, 3);
}

TEST(ClusterTest, GetRoutesToReplicas) {
  auto cluster = Cluster::Start(SmallClusterOptions(4)).MoveValueUnsafe();
  Client client(cluster.get());
  ASSERT_TRUE(client.Put("k", "v").ok());
  auto r = client.Get("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), "v");
  EXPECT_TRUE(client.Get("absent").status().IsNotFound());
}

TEST(ClusterTest, GetFailsOverWhenPrimaryDown) {
  auto cluster = Cluster::Start(SmallClusterOptions(4)).MoveValueUnsafe();
  Client client(cluster.get());
  ASSERT_TRUE(client.Put("k", "v").ok());
  int primary = cluster->PrimaryNodeFor("k");
  cluster->node(primary)->SetDown(true);
  auto r = client.Get("k");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie(), "v");
  cluster->node(primary)->SetDown(false);
}

TEST(ClusterTest, WritesToDownReplicaSucceedDegraded) {
  auto cluster = Cluster::Start(SmallClusterOptions(3)).MoveValueUnsafe();
  Client client(cluster.get());
  int primary = cluster->PrimaryNodeFor("k");
  cluster->node(primary)->SetDown(true);

  // One of three replicas is down: the write succeeds in degraded mode and
  // the missed replica write is buffered as a hint.
  EXPECT_TRUE(client.Put("k", "v").ok());
  EXPECT_EQ(cluster->GetFaultRecoveryStats().hinted_kvps, 1u);
  EXPECT_EQ(cluster->GetNodeStats(primary).skipped_replica_writes, 1u);
  EXPECT_EQ(client.Get("k").ValueOrDie(), "v");
  EXPECT_NE(cluster->Describe().find("skipped"), std::string::npos);

  // All replicas down: nothing can acknowledge the write.
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    cluster->node(n)->SetDown(true);
  }
  EXPECT_FALSE(client.Put("k2", "v").ok());
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    cluster->node(n)->SetDown(false);
  }
}

TEST(ClusterTest, BatchedPutGroupsByPrimary) {
  auto cluster = Cluster::Start(SmallClusterOptions(4)).MoveValueUnsafe();
  Client client(cluster.get());
  std::vector<std::pair<std::string, std::string>> kvps;
  for (int i = 0; i < 500; ++i) {
    kvps.emplace_back("batch" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(client.PutBatch(kvps).ok());
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());
  for (int i = 0; i < 500; i += 97) {
    auto r = client.Get("batch" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie(), "v" + std::to_string(i));
  }
  NodeStats total = cluster->GetAggregateStats();
  EXPECT_EQ(total.primary_writes, 500u);
  EXPECT_EQ(total.writes, 1500u);  // 3 copies of each
}

TEST(ClusterTest, ShardedScanStaysOrderedWithinShard) {
  ClusterOptions options = SmallClusterOptions(4);
  options.shard_key_fn = iot::TpcxIotShardKey;
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  Client client(cluster.get());

  // Readings of one sensor across time must land on one shard and scan in
  // time order.
  std::vector<std::pair<std::string, std::string>> kvps;
  for (uint64_t ts = 1000; ts < 1100; ++ts) {
    kvps.emplace_back(iot::KvpCodec::EncodeKey("sub1", "pmu_phasor_000", ts),
                      "v" + std::to_string(ts));
  }
  ASSERT_TRUE(client.PutBatch(kvps).ok());

  std::string start = iot::KvpCodec::EncodeKey("sub1", "pmu_phasor_000",
                                               1020);
  std::string end = iot::KvpCodec::EncodeKey("sub1", "pmu_phasor_000", 1030);
  std::string shard(
      iot::KvpCodec::ShardPrefixOf(Slice(start)).ToStringView());
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(client.Scan(shard, start, end, 0, &rows).ok());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.front().second, "v1020");
  EXPECT_EQ(rows.back().second, "v1029");
}

TEST(ClusterTest, PurgeAllEmptiesEveryNode) {
  auto cluster = Cluster::Start(SmallClusterOptions(3)).MoveValueUnsafe();
  Client client(cluster.get());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(cluster->PurgeAll().ok());
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    EXPECT_EQ(cluster->node(n)->store()->CountKeysSlow(), 0u);
  }
  EXPECT_EQ(cluster->GetAggregateStats().writes, 0u);  // counters reset
  // And the cluster remains usable.
  ASSERT_TRUE(client.Put("after", "purge").ok());
  EXPECT_EQ(client.Get("after").ValueOrDie(), "purge");
}

TEST(ClusterTest, MultiGetMixesHitsAndMisses) {
  auto cluster = Cluster::Start(SmallClusterOptions(3)).MoveValueUnsafe();
  Client client(cluster.get());
  ASSERT_TRUE(client.Put("k1", "v1").ok());
  ASSERT_TRUE(client.Put("k3", "v3").ok());

  std::vector<std::optional<std::string>> values;
  ASSERT_TRUE(client.MultiGet({"k1", "k2", "k3"}, &values).ok());
  ASSERT_EQ(values.size(), 3u);
  ASSERT_TRUE(values[0].has_value());
  EXPECT_EQ(*values[0], "v1");
  EXPECT_FALSE(values[1].has_value());
  ASSERT_TRUE(values[2].has_value());
  EXPECT_EQ(*values[2], "v3");
}

TEST(ClusterTest, DescribeReportsLivenessAndLoad) {
  auto cluster = Cluster::Start(SmallClusterOptions(3)).MoveValueUnsafe();
  Client client(cluster.get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Put("key" + std::to_string(i), "v").ok());
  }
  cluster->node(1)->SetDown(true);
  std::string description = cluster->Describe();
  EXPECT_NE(description.find("3 nodes"), std::string::npos);
  EXPECT_NE(description.find("DOWN"), std::string::npos);
  EXPECT_NE(description.find("primary kvps"), std::string::npos);
  cluster->node(1)->SetDown(false);
}

TEST(ClusterTest, ImbalanceIsZeroWhenIdleAndGrowsWithSkew) {
  auto cluster = Cluster::Start(SmallClusterOptions(4)).MoveValueUnsafe();
  EXPECT_DOUBLE_EQ(cluster->PrimaryLoadImbalance(), 0.0);

  // Hammer one shard key: all primaries land on one node -> high CoV.
  Client client(cluster.get());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.Put("hotkey", "v" + std::to_string(i)).ok());
  }
  EXPECT_GT(cluster->PrimaryLoadImbalance(), 1.0);
}

TEST(ClusterTest, ConcurrentClientsAreSafe) {
  auto cluster = Cluster::Start(SmallClusterOptions(4)).MoveValueUnsafe();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cluster, t] {
      Client client(cluster.get());
      for (int i = 0; i < 200; ++i) {
        std::string key = "t" + std::to_string(t) + "k" + std::to_string(i);
        ASSERT_TRUE(client.Put(key, "v").ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());
  Client client(cluster.get());
  EXPECT_EQ(client.Get("t0k0").ValueOrDie(), "v");
  EXPECT_EQ(client.Get("t3k199").ValueOrDie(), "v");
  EXPECT_EQ(cluster->GetAggregateStats().primary_writes, 800u);
}

}  // namespace
}  // namespace cluster
}  // namespace iotdb
