#include "obs/attribution.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_lint.h"
#include "obs/metrics.h"
#include "obs/slowops.h"

namespace iotdb {
namespace obs {
namespace {

uint64_t StageHistCount(Stage stage) {
  return MetricsRegistry::Global()
      .GetHistogram(std::string("attrib.") + StageName(stage) + "_micros")
      ->TakeSnapshot()
      .count;
}

TEST(StageTest, NamesAreStableSlugs) {
  EXPECT_STREQ(StageName(Stage::kShardQueueWait), "shard_queue_wait");
  EXPECT_STREQ(StageName(Stage::kVlog), "vlog");
  EXPECT_STREQ(StageName(Stage::kWalSync), "wal_sync");
  EXPECT_STREQ(StageName(Stage::kCommitWait), "commit_wait");
  EXPECT_STREQ(StageName(Stage::kFanoutSend), "fanout_send");
  EXPECT_STREQ(StageName(Stage::kQuorumWait), "quorum_wait");
  EXPECT_STREQ(StageName(Stage::kRetryBackoff), "retry_backoff");
}

TEST(StageTest, ClusterGroupIsTheDriverPathGroup) {
  int cluster = 0;
  for (int i = 0; i < kNumStages; ++i) {
    if (IsClusterStage(static_cast<Stage>(i))) ++cluster;
  }
  EXPECT_EQ(cluster, 3);
  EXPECT_TRUE(IsClusterStage(Stage::kQuorumWait));
  EXPECT_FALSE(IsClusterStage(Stage::kWalSync));
}

TEST(BreadcrumbTest, AddStageMicrosWithoutBreadcrumbIsNoOp) {
  ASSERT_EQ(CurrentBreadcrumb(), nullptr);
  AddStageMicros(Stage::kVlog, 123);  // must not crash or record anywhere
}

TEST(BreadcrumbTest, CollectsStagesAndRecordsOnComplete) {
  SetEnabled(true);
  uint64_t wal_before = StageHistCount(Stage::kWalSync);
  uint64_t vlog_before = StageHistCount(Stage::kVlog);
  {
    ScopedOpBreadcrumb breadcrumb("test.op", 7, 100);
    ASSERT_TRUE(breadcrumb.active());
    ASSERT_NE(CurrentBreadcrumb(), nullptr);
    AddStageMicros(Stage::kWalSync, 40);
    AddStageMicros(Stage::kWalSync, 10);
    EXPECT_EQ(CurrentBreadcrumb()->stage_micros[static_cast<int>(
                  Stage::kWalSync)],
              50u);
    breadcrumb.Complete(1'000, 80);
    breadcrumb.Complete(1'000, 80);  // idempotent
  }
  EXPECT_EQ(CurrentBreadcrumb(), nullptr);
  // Only the stage the op passed through entered its distribution.
  EXPECT_EQ(StageHistCount(Stage::kWalSync), wal_before + 1);
  EXPECT_EQ(StageHistCount(Stage::kVlog), vlog_before);
}

TEST(BreadcrumbTest, NeverCompletedRecordsNothing) {
  SetEnabled(true);
  uint64_t before = StageHistCount(Stage::kCommitWait);
  {
    ScopedOpBreadcrumb breadcrumb("test.op.failed", 0, 1);
    AddStageMicros(Stage::kCommitWait, 9);
    // op failed: no Complete()
  }
  EXPECT_EQ(StageHistCount(Stage::kCommitWait), before);
}

TEST(BreadcrumbTest, NestedScopesRestoreOuter) {
  SetEnabled(true);
  ScopedOpBreadcrumb outer("test.outer", 1, 1);
  OpBreadcrumb* outer_bc = CurrentBreadcrumb();
  {
    ScopedOpBreadcrumb inner("test.inner", 2, 1);
    EXPECT_NE(CurrentBreadcrumb(), outer_bc);
    AddStageMicros(Stage::kQuorumWait, 5);
  }
  EXPECT_EQ(CurrentBreadcrumb(), outer_bc);
  EXPECT_EQ(outer_bc->stage_micros[static_cast<int>(Stage::kQuorumWait)],
            0u);
}

TEST(BreadcrumbTest, DisabledRegistryInstallsNothing) {
  SetEnabled(false);
  {
    ScopedOpBreadcrumb breadcrumb("test.disabled", 0, 1);
    EXPECT_FALSE(breadcrumb.active());
    EXPECT_EQ(CurrentBreadcrumb(), nullptr);
    breadcrumb.Complete(0, 100);  // must be a no-op
  }
  SetEnabled(true);
}

TEST(SlowOpTest, KeepsKSlowestSorted) {
  SlowOpRecorder::StartRun(/*capacity=*/3);
  for (uint64_t total : {50u, 10u, 90u, 30u, 70u}) {
    OpBreadcrumb bc;
    bc.op = "test.slow";
    bc.total_micros = total;
    SlowOpRecorder::Offer(bc);
  }
  std::vector<SlowOpRecorder::Record> records =
      SlowOpRecorder::TakeSnapshot();
  SlowOpRecorder::StopRun();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].breadcrumb.total_micros, 90u);
  EXPECT_EQ(records[1].breadcrumb.total_micros, 70u);
  EXPECT_EQ(records[2].breadcrumb.total_micros, 50u);
}

TEST(SlowOpTest, StartRunClearsAndOfferNoOpsWhenDisarmed) {
  SlowOpRecorder::StartRun(4);
  OpBreadcrumb bc;
  bc.op = "test.slow";
  bc.total_micros = 5;
  SlowOpRecorder::Offer(bc);
  ASSERT_EQ(SlowOpRecorder::TakeSnapshot().size(), 1u);
  SlowOpRecorder::StopRun();
  SlowOpRecorder::Offer(bc);  // disarmed: rejected
  EXPECT_EQ(SlowOpRecorder::TakeSnapshot().size(), 1u);
  SlowOpRecorder::StartRun(4);
  EXPECT_TRUE(SlowOpRecorder::TakeSnapshot().empty());
  SlowOpRecorder::StopRun();
}

TEST(SlowOpTest, CompleteOffersBreadcrumbWithStages) {
  SetEnabled(true);
  SlowOpRecorder::StartRun(8);
  {
    ScopedOpBreadcrumb breadcrumb("test.offered", 42, 7);
    AddStageMicros(Stage::kQuorumWait, 800);
    AddStageMicros(Stage::kFanoutSend, 100);
    breadcrumb.Complete(10'000, 1'000);
  }
  std::vector<SlowOpRecorder::Record> records =
      SlowOpRecorder::TakeSnapshot();
  SlowOpRecorder::StopRun();
  ASSERT_EQ(records.size(), 1u);
  const OpBreadcrumb& bc = records[0].breadcrumb;
  EXPECT_STREQ(bc.op, "test.offered");
  EXPECT_EQ(bc.trace_id, 42u);
  EXPECT_EQ(bc.kvps, 7u);
  EXPECT_EQ(bc.total_micros, 1'000u);
  EXPECT_EQ(bc.StageSum(), 900u);
}

TEST(SlowOpTest, ToJsonIsWellFormedAndCarriesStages) {
  SlowOpRecorder::StartRun(4);
  OpBreadcrumb bc;
  bc.op = "test.json";
  bc.trace_id = 0xabc;
  bc.total_micros = 2'000;
  bc.kvps = 11;
  bc.stage_micros[static_cast<int>(Stage::kQuorumWait)] = 1'500;
  SlowOpRecorder::Offer(bc);
  std::string json = SlowOpRecorder::ToJson();
  SlowOpRecorder::StopRun();

  EXPECT_TRUE(testing::JsonLint::Valid(json)) << json;
  EXPECT_NE(json.find("\"op\":\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":\"0xabc\""), std::string::npos);
  EXPECT_NE(json.find("\"total_micros\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"quorum_wait\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"stage_sum_micros\":1500"), std::string::npos);
}

TEST(SlowOpTest, EmptyRecorderExportsEmptyList) {
  SlowOpRecorder::StartRun(4);
  std::string json = SlowOpRecorder::ToJson();
  SlowOpRecorder::StopRun();
  EXPECT_TRUE(testing::JsonLint::Valid(json)) << json;
  EXPECT_NE(json.find("\"slow_ops\":[]"), std::string::npos);
}

// TSan target: concurrent ops completing breadcrumbs race their offers into
// the recorder while a reader snapshots; the admission fast path reads the
// threshold without the lock.
TEST(SlowOpTest, ConcurrentOffersKeepInvariants) {
  SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 2'000;
  SlowOpRecorder::StartRun(16);

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        ScopedOpBreadcrumb breadcrumb("test.concurrent", t + 1, 1);
        AddStageMicros(Stage::kQuorumWait, i + 1);
        breadcrumb.Complete(i, t * kOpsPerThread + i + 1);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int round = 0; round < 5; ++round) {
    std::vector<SlowOpRecorder::Record> live =
        SlowOpRecorder::TakeSnapshot();
    EXPECT_LE(live.size(), 16u);
  }
  for (std::thread& w : workers) w.join();

  std::vector<SlowOpRecorder::Record> records =
      SlowOpRecorder::TakeSnapshot();
  SlowOpRecorder::StopRun();
  ASSERT_EQ(records.size(), 16u);
  // Sorted slowest-first and exactly the global top-16: the slowest thread
  // wrote totals (kThreads-1)*kOpsPerThread+1 .. kThreads*kOpsPerThread.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].breadcrumb.total_micros,
              uint64_t{kThreads} * kOpsPerThread - i);
  }
}

}  // namespace
}  // namespace obs
}  // namespace iotdb
