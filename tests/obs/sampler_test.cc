#include "obs/sampler.h"

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "obs/metrics.h"
#include "json_lint.h"

namespace iotdb {
namespace obs {
namespace {

// The registry is process-global and shared with every other test in this
// binary, so each test uses its own metric names.

TEST(SamplerTest, StartRefusesWhenObservabilityDisabled) {
  SetEnabled(false);
  Sampler sampler;
  EXPECT_FALSE(sampler.Start());
  EXPECT_FALSE(sampler.running());
  SetEnabled(true);
  EXPECT_TRUE(sampler.Start());
  EXPECT_TRUE(sampler.running());
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
}

TEST(SamplerTest, SampleNowBuildsConsecutiveDeltas) {
  Counter* kvps =
      MetricsRegistry::Global().GetCounter("test.sampler.deltas.kvps");
  Gauge* depth =
      MetricsRegistry::Global().GetGauge("test.sampler.deltas.depth");
  ManualClock clock(1'000'000);
  SamplerOptions options;
  options.clock = &clock;
  Sampler sampler(options);

  sampler.SampleNow();  // primes the base snapshot, no interval yet
  EXPECT_TRUE(sampler.TakeTimeline().empty());

  kvps->Add(100);
  depth->Set(7);
  clock.Advance(1'000'000);
  sampler.SampleNow();

  kvps->Add(250);
  depth->Set(3);
  clock.Advance(1'000'000);
  sampler.SampleNow();

  Timeline timeline = sampler.TakeTimeline();
  ASSERT_EQ(timeline.intervals.size(), 2u);
  EXPECT_EQ(timeline.intervals[0].CounterDelta("test.sampler.deltas.kvps"),
            100u);
  EXPECT_EQ(timeline.intervals[1].CounterDelta("test.sampler.deltas.kvps"),
            250u);
  // Gauges report the level at interval end, not a delta.
  EXPECT_EQ(timeline.intervals[0].GaugeValue("test.sampler.deltas.depth"),
            7);
  EXPECT_EQ(timeline.intervals[1].GaugeValue("test.sampler.deltas.depth"),
            3);
  EXPECT_DOUBLE_EQ(timeline.intervals[0].DurationSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(timeline.intervals[0].Rate("test.sampler.deltas.kvps"),
                   100.0);
  EXPECT_EQ(timeline.CounterTotal("test.sampler.deltas.kvps"), 350u);
}

TEST(SamplerTest, RingWraparoundDropsOldestAndCounts) {
  Counter* kvps =
      MetricsRegistry::Global().GetCounter("test.sampler.wrap.kvps");
  ManualClock clock(0);
  SamplerOptions options;
  options.clock = &clock;
  options.capacity = 4;
  Sampler sampler(options);

  sampler.SampleNow();  // prime
  // Interval i carries delta (i + 1).
  for (uint64_t i = 0; i < 10; ++i) {
    kvps->Add(i + 1);
    clock.Advance(1'000'000);
    sampler.SampleNow();
  }

  Timeline timeline = sampler.TakeTimeline();
  ASSERT_EQ(timeline.intervals.size(), 4u);
  EXPECT_EQ(timeline.dropped_intervals, 6u);
  // Overflow merges at the old end: the oldest interval absorbed deltas
  // 1..7, the three newest keep per-cadence granularity.
  EXPECT_EQ(timeline.intervals[0].CounterDelta("test.sampler.wrap.kvps"),
            1u + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_DOUBLE_EQ(timeline.intervals[0].DurationSeconds(), 7.0);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(timeline.intervals[i].CounterDelta("test.sampler.wrap.kvps"),
              7 + i);
  }
  // Merging is lossless for totals: the exact-sum property holds over the
  // whole run even after wraparound.
  EXPECT_EQ(timeline.CounterTotal("test.sampler.wrap.kvps"),
            1u + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10);
}

TEST(SamplerTest, HistogramDeltaAcrossWrapIsPerInterval) {
  LatencyHistogram* lat =
      MetricsRegistry::Global().GetHistogram("test.sampler.wrap.lat");
  ManualClock clock(0);
  SamplerOptions options;
  options.clock = &clock;
  options.capacity = 2;
  Sampler sampler(options);

  sampler.SampleNow();
  for (int i = 0; i < 5; ++i) {
    lat->Record(1000 * (i + 1));
    clock.Advance(1'000'000);
    sampler.SampleNow();
  }

  Timeline timeline = sampler.TakeTimeline();
  ASSERT_EQ(timeline.intervals.size(), 2u);
  EXPECT_EQ(timeline.dropped_intervals, 3u);
  // Histogram deltas are per-interval, not cumulative: the merged oldest
  // interval aggregates the four recordings made during it (count, sum
  // and bucket counts add; min/max span the merge), the newest keeps the
  // single recording made during it.
  auto oldest =
      timeline.intervals[0].delta.histograms.find("test.sampler.wrap.lat");
  ASSERT_NE(oldest, timeline.intervals[0].delta.histograms.end());
  EXPECT_EQ(oldest->second.count, 4u);
  EXPECT_EQ(oldest->second.sum, 1000u + 2000 + 3000 + 4000);
  auto newest =
      timeline.intervals[1].delta.histograms.find("test.sampler.wrap.lat");
  ASSERT_NE(newest, timeline.intervals[1].delta.histograms.end());
  EXPECT_EQ(newest->second.count, 1u);
  EXPECT_EQ(newest->second.sum, 5000u);
}

TEST(SamplerTest, StopFlushesFinalPartialInterval) {
  Counter* kvps =
      MetricsRegistry::Global().GetCounter("test.sampler.flush.kvps");
  ManualClock clock(0);
  SamplerOptions options;
  options.clock = &clock;
  options.cadence_micros = 60'000'000;  // thread never fires on its own
  Sampler sampler(options);

  ASSERT_TRUE(sampler.Start());
  kvps->Add(42);
  clock.Advance(250'000);  // quarter of a second — partial interval
  sampler.Stop();

  Timeline timeline = sampler.TakeTimeline();
  ASSERT_EQ(timeline.intervals.size(), 1u);
  EXPECT_EQ(timeline.intervals[0].CounterDelta("test.sampler.flush.kvps"),
            42u);
  EXPECT_DOUBLE_EQ(timeline.intervals[0].DurationSeconds(), 0.25);
}

TEST(SamplerTest, BackgroundThreadCollectsExactTotals) {
  Counter* kvps =
      MetricsRegistry::Global().GetCounter("test.sampler.thread.kvps");
  SamplerOptions options;
  options.cadence_micros = 5'000;  // 5 ms — several intervals per run
  Sampler sampler(options);

  ASSERT_TRUE(sampler.Start());
  uint64_t total = 0;
  for (int i = 0; i < 20; ++i) {
    kvps->Add(17);
    total += 17;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.Stop();

  Timeline timeline = sampler.TakeTimeline();
  ASSERT_FALSE(timeline.empty());
  // Consecutive deltas telescope and Stop() flushes the tail, so the
  // interval sum is exact regardless of scheduling.
  EXPECT_EQ(timeline.CounterTotal("test.sampler.thread.kvps"), total);
}

TEST(SamplerTest, ToJsonIsWellFormedAndCarriesIngestSeries) {
  Counter* ingest =
      MetricsRegistry::Global().GetCounter("driver.ingest.kvps");
  Counter* node0 =
      MetricsRegistry::Global().GetCounter("cluster.node0.primary_kvps");
  ManualClock clock(0);
  SamplerOptions options;
  options.clock = &clock;
  Sampler sampler(options);

  sampler.SampleNow();
  ingest->Add(500);
  node0->Add(123);
  clock.Advance(1'000'000);
  sampler.SampleNow();

  Timeline timeline = sampler.TakeTimeline();
  std::string json = timeline.ToJson();
  EXPECT_TRUE(testing::JsonLint::Valid(json)) << json;
  EXPECT_NE(json.find("\"cadence_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"ingest_kvps\":500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"node_kvps\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"0\":123"), std::string::npos) << json;
  // Deltas only see increments between the two samples, so prior tests'
  // use of the shared counter cannot leak in.
  EXPECT_EQ(timeline.CounterTotal("driver.ingest.kvps"), 500u);
}

}  // namespace
}  // namespace obs
}  // namespace iotdb
