#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace iotdb {
namespace obs {
namespace {

// Deterministic 64-bit LCG so the percentile tests are reproducible.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17;
  }

 private:
  uint64_t state_;
};

// --- Bucket geometry -------------------------------------------------------

TEST(LatencyHistogramBuckets, ValuesBelowSixteenAreExact) {
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    size_t idx = LatencyHistogram::BucketIndexFor(v);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(idx), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(idx), v);
  }
}

TEST(LatencyHistogramBuckets, BoundsBracketEveryValue) {
  std::vector<uint64_t> probes;
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t p = uint64_t{1} << bit;
    probes.push_back(p);
    probes.push_back(p - 1);
    probes.push_back(p + 1);
    probes.push_back(p + p / 3);
  }
  Lcg rng(42);
  for (int i = 0; i < 10000; ++i) probes.push_back(rng.Next());
  for (uint64_t v : probes) {
    size_t idx = LatencyHistogram::BucketIndexFor(v);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
    EXPECT_LE(LatencyHistogram::BucketLowerBound(idx), v)
        << "value " << v << " bucket " << idx;
    EXPECT_GE(LatencyHistogram::BucketUpperBound(idx), v)
        << "value " << v << " bucket " << idx;
  }
}

TEST(LatencyHistogramBuckets, BucketsTileTheRangeWithoutGaps) {
  // Each bucket's lower bound must be exactly one past the previous
  // bucket's inclusive upper bound — no gaps, no overlaps.
  for (size_t idx = 1; idx < LatencyHistogram::kNumBuckets; ++idx) {
    uint64_t prev_hi = LatencyHistogram::BucketUpperBound(idx - 1);
    uint64_t lo = LatencyHistogram::BucketLowerBound(idx);
    if (prev_hi == std::numeric_limits<uint64_t>::max()) break;
    ASSERT_EQ(lo, prev_hi + 1) << "gap/overlap at bucket " << idx;
  }
}

TEST(LatencyHistogramBuckets, RelativeWidthIsBounded) {
  // Above the exact range the bucket width is at most lower/16, which is
  // what bounds the pre-interpolation quantile error at 6.25%.
  for (size_t idx = LatencyHistogram::kSubBuckets;
       idx < LatencyHistogram::kNumBuckets; ++idx) {
    uint64_t lo = LatencyHistogram::BucketLowerBound(idx);
    uint64_t hi = LatencyHistogram::BucketUpperBound(idx);
    if (hi == std::numeric_limits<uint64_t>::max()) break;
    uint64_t width = hi - lo + 1;
    EXPECT_LE(width, std::max<uint64_t>(1, lo / 16))
        << "bucket " << idx << " [" << lo << ", " << hi << "]";
  }
}

// --- Percentile accuracy ---------------------------------------------------

double ExactPercentile(std::vector<uint64_t> sorted, double p) {
  // Nearest-rank on the sorted sample, matching the histogram's "value at
  // or below which p% of samples fall" definition.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return static_cast<double>(sorted[rank - 1]);
}

void CheckPercentiles(const std::vector<uint64_t>& values,
                      double tolerance) {
  LatencyHistogram hist;
  for (uint64_t v : values) hist.Record(v);
  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {50.0, 95.0, 99.0, 99.9}) {
    double exact = ExactPercentile(sorted, p);
    double approx = hist.Percentile(p);
    double err = exact > 0 ? std::abs(approx - exact) / exact : 0.0;
    EXPECT_LE(err, tolerance)
        << "p" << p << ": exact " << exact << " approx " << approx;
  }
}

TEST(LatencyHistogramPercentiles, UniformDistribution) {
  Lcg rng(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) values.push_back(rng.Next() % 1000000);
  CheckPercentiles(values, 0.07);
}

TEST(LatencyHistogramPercentiles, HeavyTailedDistribution) {
  // Latency-shaped: mostly small with a long tail across several octaves.
  Lcg rng(2);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    uint64_t base = 50 + rng.Next() % 200;
    if (rng.Next() % 100 < 5) base *= 1 + rng.Next() % 500;
    values.push_back(base);
  }
  CheckPercentiles(values, 0.07);
}

TEST(LatencyHistogramPercentiles, SmallExactValues) {
  // Everything below 16 lands in exact buckets: zero error.
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 16);
  LatencyHistogram hist;
  for (uint64_t v : values) hist.Record(v);
  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_NEAR(hist.Percentile(p), ExactPercentile(sorted, p), 1.0);
  }
}

TEST(LatencyHistogram, CountSumMinMaxAreExact) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Min(), 0u);
  hist.Record(7);
  hist.Record(100);
  hist.Record(3);
  EXPECT_EQ(hist.Count(), 3u);
  EXPECT_EQ(hist.Sum(), 110u);
  EXPECT_EQ(hist.Min(), 3u);
  EXPECT_EQ(hist.Max(), 100u);
  EXPECT_NEAR(hist.Mean(), 110.0 / 3.0, 1e-9);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Max(), 0u);
}

// --- Concurrency (run under TSan via the obs_tsan tier) --------------------

TEST(CounterConcurrency, ParallelAddsAreNotLost) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(HistogramConcurrency, ParallelRecordsAreNotLost) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  LatencyHistogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) * 1000 + (i % 997));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
  HistogramSnapshot snap = hist.TakeSnapshot();
  uint64_t bucket_total = 0;
  for (const auto& [idx, n] : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(RegistryConcurrency, LookupsRacingWithWritersAndSnapshots) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t]() {
      // Same names from every thread: pointers must be stable and shared.
      Counter* c = registry.GetCounter("race.counter");
      LatencyHistogram* h = registry.GetHistogram("race.hist");
      Gauge* g = registry.GetGauge("race.gauge." + std::to_string(t % 2));
      for (int i = 0; i < 20000; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(i));
        g->Add(1);
        if (i % 4096 == 0) {
          MetricsSnapshot snap = registry.TakeSnapshot();
          ASSERT_LE(snap.counters.at("race.counter"),
                    uint64_t{kThreads} * 20000);
        }
      }
      EXPECT_EQ(registry.GetCounter("race.counter"), c);
      EXPECT_EQ(registry.GetHistogram("race.hist"), h);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.GetCounter("race.counter")->Value(),
            uint64_t{kThreads} * 20000);
  EXPECT_EQ(registry.GetHistogram("race.hist")->Count(),
            uint64_t{kThreads} * 20000);
}

// --- Registry / snapshot semantics -----------------------------------------

TEST(MetricsRegistry, InstrumentPointersAreStableAndNamespaced) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("stable.name");
  Gauge* g = registry.GetGauge("stable.name");
  LatencyHistogram* h = registry.GetHistogram("stable.name");
  EXPECT_EQ(registry.GetCounter("stable.name"), c);
  EXPECT_EQ(registry.GetGauge("stable.name"), g);
  EXPECT_EQ(registry.GetHistogram("stable.name"), h);
  c->Add(5);
  g->Set(-3);
  h->Record(9);
  MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("stable.name"), 5u);
  EXPECT_EQ(snap.gauges.at("stable.name"), -3);
  EXPECT_EQ(snap.histograms.at("stable.name").count, 1u);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
}

TEST(MetricsSnapshot, DeltaSubtractsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("delta.ops");
  Gauge* g = registry.GetGauge("delta.depth");
  LatencyHistogram* h = registry.GetHistogram("delta.lat");
  c->Add(10);
  g->Set(4);
  h->Record(100);
  h->Record(200);
  MetricsSnapshot before = registry.TakeSnapshot();
  c->Add(7);
  g->Set(2);
  h->Record(100);
  MetricsSnapshot after = registry.TakeSnapshot();
  MetricsSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.counters.at("delta.ops"), 7u);
  EXPECT_EQ(delta.gauges.at("delta.depth"), 2);  // level, not subtracted
  EXPECT_EQ(delta.histograms.at("delta.lat").count, 1u);
  EXPECT_EQ(delta.histograms.at("delta.lat").sum, 100u);
  // Instruments born after `before` appear whole.
  registry.GetCounter("delta.born_late")->Add(3);
  MetricsSnapshot third = registry.TakeSnapshot();
  EXPECT_EQ(third.DeltaSince(before).counters.at("delta.born_late"), 3u);
}

TEST(MetricsSnapshot, HistogramDeltaPercentilesCoverOnlyTheWindow) {
  LatencyHistogram hist;
  for (int i = 0; i < 1000; ++i) hist.Record(10);
  HistogramSnapshot before = hist.TakeSnapshot();
  for (int i = 0; i < 1000; ++i) hist.Record(100000);
  HistogramSnapshot delta = hist.TakeSnapshot().DeltaSince(before);
  EXPECT_EQ(delta.count, 1000u);
  // The old 10s subtracted out: the window's p50 sits near 100000.
  EXPECT_GE(delta.Percentile(50), 90000.0);
}

// --- JSON round-trip --------------------------------------------------------

TEST(MetricsSnapshotJson, RoundTripIsExact) {
  MetricsRegistry registry;
  registry.GetCounter("json.a")->Add(123456789);
  registry.GetCounter("json.b\"quoted\\name")->Add(1);
  registry.GetGauge("json.depth")->Set(-42);
  LatencyHistogram* h = registry.GetHistogram("json.lat");
  Lcg rng(3);
  for (int i = 0; i < 10000; ++i) h->Record(rng.Next() % 5000000);
  registry.GetHistogram("json.empty");

  MetricsSnapshot snap = registry.TakeSnapshot();
  std::string json = snap.ToJson();
  Result<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const MetricsSnapshot& got = parsed.ValueOrDie();
  EXPECT_TRUE(got == snap);
  // Percentiles derived from the parsed copy match the original exactly.
  EXPECT_EQ(got.histograms.at("json.lat").Percentile(99),
            snap.histograms.at("json.lat").Percentile(99));
}

TEST(MetricsSnapshotJson, EmptySnapshotRoundTrips) {
  MetricsSnapshot empty;
  Result<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.ValueOrDie().empty());
}

TEST(MetricsSnapshotJson, MalformedInputIsRejected) {
  for (const char* bad :
       {"", "{", "null", "[1,2]", "{\"counters\":{\"x\":-1}}",
        "{\"counters\":{\"x\":}}", "{\"counters\":{\"x\":1}} trailing",
        "{\"histograms\":{\"h\":{\"count\":\"nan\"}}}"}) {
    Result<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
  }
}

TEST(MetricsSnapshot, TableListsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("table.ops")->Add(9);
  registry.GetGauge("table.depth")->Set(2);
  registry.GetHistogram("table.lat")->Record(50);
  std::string table = registry.TakeSnapshot().ToTable();
  EXPECT_NE(table.find("table.ops"), std::string::npos);
  EXPECT_NE(table.find("table.depth"), std::string::npos);
  EXPECT_NE(table.find("table.lat"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

// --- Enabled switch and timers ---------------------------------------------

TEST(EnabledSwitch, ScopedTimerSkipsClockAndRecordWhenDisabled) {
  ManualClock clock(1000);
  LatencyHistogram hist;
  SetEnabled(false);
  {
    ScopedTimer timer(&hist, &clock);
    clock.Advance(500);
  }
  EXPECT_EQ(hist.Count(), 0u);
  SetEnabled(true);
  {
    ScopedTimer timer(&hist, &clock);
    clock.Advance(500);
  }
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_EQ(hist.Max(), 500u);
}

TEST(ScopedTimer, StopIsIdempotentAndCancelDrops) {
  ManualClock clock(0);
  LatencyHistogram hist;
  SetEnabled(true);
  {
    ScopedTimer timer(&hist, &clock);
    clock.Advance(30);
    timer.Stop();
    clock.Advance(1000);
    timer.Stop();  // no-op
  }                // destructor: no-op
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_EQ(hist.Sum(), 30u);
  {
    ScopedTimer timer(&hist, &clock);
    clock.Advance(999);
    timer.Cancel();
  }
  EXPECT_EQ(hist.Count(), 1u);
}

TEST(TraceSpan, RecordsIntoGlobalRegistryByName) {
  SetEnabled(true);
  ManualClock clock(0);
  {
    TraceSpan span("test.tracespan.span_micros", &clock);
    clock.Advance(77);
  }
  LatencyHistogram* h = MetricsRegistry::Global().GetHistogram(
      "test.tracespan.span_micros");
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_EQ(h->Max(), 77u);
}

}  // namespace
}  // namespace obs
}  // namespace iotdb
