#include "obs/trace.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "obs/metrics.h"
#include "json_lint.h"

namespace iotdb {
namespace obs {
namespace {

// TraceBuffer state is process-global; every test starts its own tracing
// session (StartTracing clears prior spans) and stops it before asserting.

TEST(TraceBufferTest, DisabledRecordIsNoOp) {
  TraceBuffer::StartTracing(16);
  TraceBuffer::StopTracing();
  ASSERT_FALSE(TraceBuffer::Enabled());
  TraceBuffer::Record("test.disabled", 1, 2);
  EXPECT_TRUE(TraceBuffer::Snapshot().empty());
  EXPECT_EQ(TraceBuffer::DroppedSpans(), 0u);
}

TEST(TraceBufferTest, RecordPreservesFieldsAndSortsByStart) {
  TraceBuffer::StartTracing(16);
  TraceBuffer::Record("test.second", 200, 10, "kvps", 77);
  TraceBuffer::Record("test.first", 100, 5);
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.first");
  EXPECT_EQ(events[0].start_micros, 100u);
  EXPECT_EQ(events[0].duration_micros, 5u);
  EXPECT_EQ(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[1].name, "test.second");
  EXPECT_STREQ(events[1].arg_name, "kvps");
  EXPECT_EQ(events[1].arg_value, 77u);
}

TEST(TraceBufferTest, WraparoundKeepsNewestAndCountsDropped) {
  TraceBuffer::StartTracing(4);
  for (uint64_t i = 0; i < 10; ++i) {
    TraceBuffer::Record("test.wrap", 100 + i, 1, "i", i);
  }
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(TraceBuffer::DroppedSpans(), 6u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg_value, 6 + i);  // newest four: i = 6..9
  }
}

TEST(TraceBufferTest, StartTracingClearsPriorSession) {
  TraceBuffer::StartTracing(4);
  for (int i = 0; i < 10; ++i) TraceBuffer::Record("test.old", i, 1);
  TraceBuffer::StopTracing();
  ASSERT_FALSE(TraceBuffer::Snapshot().empty());

  TraceBuffer::StartTracing(4);
  TraceBuffer::StopTracing();
  EXPECT_TRUE(TraceBuffer::Snapshot().empty());
  EXPECT_EQ(TraceBuffer::DroppedSpans(), 0u);
}

TEST(TraceBufferTest, ChromeJsonHasRequiredEventFields) {
  TraceBuffer::StartTracing(16);
  TraceBuffer::Record("test.json \"quoted\\name", 10, 3, "bytes", 4096);
  TraceBuffer::StopTracing();

  std::string json = TraceBuffer::ToChromeTraceJson();
  EXPECT_TRUE(testing::JsonLint::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pid\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  // The quote and backslash in the name must have been escaped.
  EXPECT_NE(json.find("\\\"quoted\\\\name"), std::string::npos) << json;
}

TEST(TraceBufferTest, ConcurrentWritersProduceWellFormedJson) {
  constexpr int kThreads = 4;
  constexpr uint64_t kSpansPerThread = 20'000;
  TraceBuffer::StartTracing(1024);

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (uint64_t i = 0; i < kSpansPerThread; ++i) {
        TraceBuffer::Record("test.concurrent", t * kSpansPerThread + i, 1,
                            "i", i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Export repeatedly while the writers hammer their rings: the snapshot
  // may mix old and new spans but must never tear or emit broken JSON.
  for (int round = 0; round < 5; ++round) {
    std::string live = TraceBuffer::ToChromeTraceJson();
    EXPECT_TRUE(testing::JsonLint::Valid(live));
  }
  for (std::thread& w : writers) w.join();
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  EXPECT_LE(events.size(), size_t{1024} * kThreads);
  EXPECT_EQ(events.size() + TraceBuffer::DroppedSpans(),
            uint64_t{kThreads} * kSpansPerThread);
  std::string json = TraceBuffer::ToChromeTraceJson();
  EXPECT_TRUE(testing::JsonLint::Valid(json));
}

TEST(TraceSpanTest, RecordsHistogramAndTraceFromOneTiming) {
  SetEnabled(true);
  LatencyHistogram* hist =
      MetricsRegistry::Global().GetHistogram("test.span.dual");
  uint64_t count_before = hist->TakeSnapshot().count;
  ManualClock clock(5'000);
  TraceBuffer::StartTracing(16);
  {
    TraceSpan span("test.span.dual", hist, &clock);
    span.SetArg("rows", 9);
    clock.Advance(1'500);
  }
  TraceBuffer::StopTracing();

  EXPECT_EQ(hist->TakeSnapshot().count, count_before + 1);
  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.span.dual");
  EXPECT_EQ(events[0].start_micros, 5'000u);
  EXPECT_EQ(events[0].duration_micros, 1'500u);
  EXPECT_STREQ(events[0].arg_name, "rows");
  EXPECT_EQ(events[0].arg_value, 9u);
}

TEST(TraceSpanTest, CancelDropsBothSinks) {
  LatencyHistogram* hist =
      MetricsRegistry::Global().GetHistogram("test.span.cancel");
  uint64_t count_before = hist->TakeSnapshot().count;
  ManualClock clock(0);
  TraceBuffer::StartTracing(16);
  {
    TraceSpan span("test.span.cancel", hist, &clock);
    clock.Advance(100);
    span.Cancel();
  }
  TraceBuffer::StopTracing();

  EXPECT_EQ(hist->TakeSnapshot().count, count_before);
  EXPECT_TRUE(TraceBuffer::Snapshot().empty());
}

TEST(TraceSpanTest, StopIsIdempotent) {
  LatencyHistogram* hist =
      MetricsRegistry::Global().GetHistogram("test.span.stop");
  uint64_t count_before = hist->TakeSnapshot().count;
  ManualClock clock(0);
  TraceBuffer::StartTracing(16);
  TraceSpan span("test.span.stop", hist, &clock);
  clock.Advance(10);
  span.Stop();
  span.Stop();
  TraceBuffer::StopTracing();

  EXPECT_EQ(hist->TakeSnapshot().count, count_before + 1);
  EXPECT_EQ(TraceBuffer::Snapshot().size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace iotdb
