#include "obs/trace.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "obs/metrics.h"
#include "json_lint.h"

namespace iotdb {
namespace obs {
namespace {

// TraceBuffer state is process-global; every test starts its own tracing
// session (StartTracing clears prior spans) and stops it before asserting.

TEST(TraceBufferTest, DisabledRecordIsNoOp) {
  TraceBuffer::StartTracing(16);
  TraceBuffer::StopTracing();
  ASSERT_FALSE(TraceBuffer::Enabled());
  TraceBuffer::Record("test.disabled", 1, 2);
  EXPECT_TRUE(TraceBuffer::Snapshot().empty());
  EXPECT_EQ(TraceBuffer::DroppedSpans(), 0u);
}

TEST(TraceBufferTest, RecordPreservesFieldsAndSortsByStart) {
  TraceBuffer::StartTracing(16);
  TraceBuffer::Record("test.second", 200, 10, "kvps", 77);
  TraceBuffer::Record("test.first", 100, 5);
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.first");
  EXPECT_EQ(events[0].start_micros, 100u);
  EXPECT_EQ(events[0].duration_micros, 5u);
  EXPECT_EQ(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[1].name, "test.second");
  EXPECT_STREQ(events[1].arg_name, "kvps");
  EXPECT_EQ(events[1].arg_value, 77u);
}

TEST(TraceBufferTest, WraparoundKeepsNewestAndCountsDropped) {
  TraceBuffer::StartTracing(4);
  for (uint64_t i = 0; i < 10; ++i) {
    TraceBuffer::Record("test.wrap", 100 + i, 1, "i", i);
  }
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(TraceBuffer::DroppedSpans(), 6u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg_value, 6 + i);  // newest four: i = 6..9
  }
}

TEST(TraceBufferTest, StartTracingClearsPriorSession) {
  TraceBuffer::StartTracing(4);
  for (int i = 0; i < 10; ++i) TraceBuffer::Record("test.old", i, 1);
  TraceBuffer::StopTracing();
  ASSERT_FALSE(TraceBuffer::Snapshot().empty());

  TraceBuffer::StartTracing(4);
  TraceBuffer::StopTracing();
  EXPECT_TRUE(TraceBuffer::Snapshot().empty());
  EXPECT_EQ(TraceBuffer::DroppedSpans(), 0u);
}

TEST(TraceBufferTest, ChromeJsonHasRequiredEventFields) {
  TraceBuffer::StartTracing(16);
  TraceBuffer::Record("test.json \"quoted\\name", 10, 3, "bytes", 4096);
  TraceBuffer::StopTracing();

  std::string json = TraceBuffer::ToChromeTraceJson();
  EXPECT_TRUE(testing::JsonLint::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pid\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  // The quote and backslash in the name must have been escaped.
  EXPECT_NE(json.find("\\\"quoted\\\\name"), std::string::npos) << json;
}

TEST(TraceBufferTest, ConcurrentWritersProduceWellFormedJson) {
  constexpr int kThreads = 4;
  constexpr uint64_t kSpansPerThread = 20'000;
  TraceBuffer::StartTracing(1024);

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (uint64_t i = 0; i < kSpansPerThread; ++i) {
        TraceBuffer::Record("test.concurrent", t * kSpansPerThread + i, 1,
                            "i", i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Export repeatedly while the writers hammer their rings: the snapshot
  // may mix old and new spans but must never tear or emit broken JSON.
  for (int round = 0; round < 5; ++round) {
    std::string live = TraceBuffer::ToChromeTraceJson();
    EXPECT_TRUE(testing::JsonLint::Valid(live));
  }
  for (std::thread& w : writers) w.join();
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  EXPECT_LE(events.size(), size_t{1024} * kThreads);
  EXPECT_EQ(events.size() + TraceBuffer::DroppedSpans(),
            uint64_t{kThreads} * kSpansPerThread);
  std::string json = TraceBuffer::ToChromeTraceJson();
  EXPECT_TRUE(testing::JsonLint::Valid(json));
}

// Slice of the exported JSON covering the named event (up to the start of
// the next event), so assertions can target one event's fields.
std::string EventJson(const std::string& json, const std::string& name) {
  size_t start = json.find("{\"name\":\"" + name + "\"");
  if (start == std::string::npos) return "";
  size_t end = json.find("{\"name\":", start + 1);
  return json.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

TEST(TraceContextTest, MintAndChildLinkIds) {
  TraceContext root = TraceContext::Mint();
  EXPECT_TRUE(root.valid());
  EXPECT_NE(root.trace_id, 0u);
  EXPECT_EQ(root.parent_id, 0u);

  TraceContext child = root.Child();
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
}

TEST(TraceContextTest, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  TraceContext root = TraceContext::Mint();
  {
    ScopedTraceContext outer(root);
    EXPECT_EQ(CurrentTraceContext().span_id, root.span_id);
    TraceContext child = CurrentTraceContext().Child();
    {
      ScopedTraceContext inner(child);
      EXPECT_EQ(CurrentTraceContext().span_id, child.span_id);
      EXPECT_EQ(CurrentTraceContext().parent_id, root.span_id);
    }
    EXPECT_EQ(CurrentTraceContext().span_id, root.span_id);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(TraceBufferTest, ContextFieldsSurviveSnapshot) {
  TraceBuffer::StartTracing(16);
  TraceContext root = TraceContext::Mint();
  TraceBuffer::Record("test.ctx", 100, 5, root, "kvps", 3);
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, root.trace_id);
  EXPECT_EQ(events[0].span_id, root.span_id);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[0].arg_value, 3u);
}

TEST(TraceBufferTest, FlowEventsEmitWellFormedBindings) {
  TraceBuffer::StartTracing(16);
  TraceContext root = TraceContext::Mint();
  TraceContext child = root.Child();
  TraceContext grandchild = child.Child();
  TraceBuffer::Record("test.flow.root", 100, 50, root);
  TraceBuffer::Record("test.flow.child", 110, 20, child);
  TraceBuffer::Record("test.flow.leaf", 120, 5, grandchild);
  TraceBuffer::StopTracing();

  std::string json = TraceBuffer::ToChromeTraceJson();
  ASSERT_TRUE(testing::JsonLint::Valid(json)) << json;

  char bind[32];
  snprintf(bind, sizeof(bind), "\"bind_id\":\"0x%llx\"",
           static_cast<unsigned long long>(root.trace_id));

  // Every event of the op shares one flow (bind_id == trace_id): the root
  // produces it, interior spans consume and re-produce, the leaf consumes.
  std::string root_json = EventJson(json, "test.flow.root");
  EXPECT_NE(root_json.find(bind), std::string::npos) << root_json;
  EXPECT_NE(root_json.find("\"flow_out\":true"), std::string::npos);
  EXPECT_EQ(root_json.find("\"flow_in\""), std::string::npos);

  std::string child_json = EventJson(json, "test.flow.child");
  EXPECT_NE(child_json.find(bind), std::string::npos) << child_json;
  EXPECT_NE(child_json.find("\"flow_in\":true"), std::string::npos);
  EXPECT_NE(child_json.find("\"flow_out\":true"), std::string::npos);

  std::string leaf_json = EventJson(json, "test.flow.leaf");
  EXPECT_NE(leaf_json.find(bind), std::string::npos) << leaf_json;
  EXPECT_NE(leaf_json.find("\"flow_in\":true"), std::string::npos);
  EXPECT_EQ(leaf_json.find("\"flow_out\""), std::string::npos);

  // The causal ids ride in args for tooling that reads the raw JSON.
  char parent_arg[32];
  snprintf(parent_arg, sizeof(parent_arg), "\"parent\":\"0x%llx\"",
           static_cast<unsigned long long>(root.span_id));
  EXPECT_NE(child_json.find(parent_arg), std::string::npos) << child_json;
}

TEST(TraceBufferTest, FlowBindingsOmittedWhenParentWasDropped) {
  TraceBuffer::StartTracing(16);
  TraceContext root = TraceContext::Mint();
  TraceContext orphan = root.Child();
  // Only the child is recorded: its parent span never made the ring (as
  // after wraparound), so no half-open flow may be emitted.
  TraceBuffer::Record("test.flow.orphan", 100, 5, orphan);
  TraceBuffer::StopTracing();

  std::string json = TraceBuffer::ToChromeTraceJson();
  ASSERT_TRUE(testing::JsonLint::Valid(json)) << json;
  std::string orphan_json = EventJson(json, "test.flow.orphan");
  EXPECT_EQ(orphan_json.find("\"flow_in\""), std::string::npos)
      << orphan_json;
  EXPECT_EQ(orphan_json.find("\"bind_id\""), std::string::npos);
  // The parent id still appears in args: the link is data, only the
  // rendered arrow is suppressed.
  EXPECT_NE(orphan_json.find("\"parent\""), std::string::npos);
}

TEST(TraceBufferTest, CrossThreadChildLinksToParent) {
  TraceBuffer::StartTracing(16);
  TraceContext root = TraceContext::Mint();
  TraceBuffer::Record("test.xthread.parent", 100, 50, root);
  std::thread worker([&root] {
    TraceBuffer::Record("test.xthread.child", 120, 10, root.Child());
  });
  worker.join();
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.xthread.parent");
  EXPECT_STREQ(events[1].name, "test.xthread.child");
  EXPECT_NE(events[0].tid, events[1].tid);  // separate per-thread rings
  EXPECT_EQ(events[1].trace_id, events[0].trace_id);
  EXPECT_EQ(events[1].parent_id, events[0].span_id);
}

TEST(TraceSpanTest, SetContextFlowsIntoRecordedEvent) {
  SetEnabled(true);
  ManualClock clock(1'000);
  TraceBuffer::StartTracing(16);
  TraceContext ctx = TraceContext::Mint();
  {
    TraceSpan span("test.span.ctx", nullptr, &clock);
    span.SetContext(ctx);
    clock.Advance(42);
  }
  TraceBuffer::StopTracing();

  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, ctx.trace_id);
  EXPECT_EQ(events[0].span_id, ctx.span_id);
  EXPECT_EQ(events[0].duration_micros, 42u);
}

TEST(TraceSpanTest, RecordsHistogramAndTraceFromOneTiming) {
  SetEnabled(true);
  LatencyHistogram* hist =
      MetricsRegistry::Global().GetHistogram("test.span.dual");
  uint64_t count_before = hist->TakeSnapshot().count;
  ManualClock clock(5'000);
  TraceBuffer::StartTracing(16);
  {
    TraceSpan span("test.span.dual", hist, &clock);
    span.SetArg("rows", 9);
    clock.Advance(1'500);
  }
  TraceBuffer::StopTracing();

  EXPECT_EQ(hist->TakeSnapshot().count, count_before + 1);
  std::vector<TraceEvent> events = TraceBuffer::Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.span.dual");
  EXPECT_EQ(events[0].start_micros, 5'000u);
  EXPECT_EQ(events[0].duration_micros, 1'500u);
  EXPECT_STREQ(events[0].arg_name, "rows");
  EXPECT_EQ(events[0].arg_value, 9u);
}

TEST(TraceSpanTest, CancelDropsBothSinks) {
  LatencyHistogram* hist =
      MetricsRegistry::Global().GetHistogram("test.span.cancel");
  uint64_t count_before = hist->TakeSnapshot().count;
  ManualClock clock(0);
  TraceBuffer::StartTracing(16);
  {
    TraceSpan span("test.span.cancel", hist, &clock);
    clock.Advance(100);
    span.Cancel();
  }
  TraceBuffer::StopTracing();

  EXPECT_EQ(hist->TakeSnapshot().count, count_before);
  EXPECT_TRUE(TraceBuffer::Snapshot().empty());
}

TEST(TraceSpanTest, StopIsIdempotent) {
  LatencyHistogram* hist =
      MetricsRegistry::Global().GetHistogram("test.span.stop");
  uint64_t count_before = hist->TakeSnapshot().count;
  ManualClock clock(0);
  TraceBuffer::StartTracing(16);
  TraceSpan span("test.span.stop", hist, &clock);
  clock.Advance(10);
  span.Stop();
  span.Stop();
  TraceBuffer::StopTracing();

  EXPECT_EQ(hist->TakeSnapshot().count, count_before + 1);
  EXPECT_EQ(TraceBuffer::Snapshot().size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace iotdb
