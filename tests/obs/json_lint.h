#ifndef IOTDB_TESTS_OBS_JSON_LINT_H_
#define IOTDB_TESTS_OBS_JSON_LINT_H_

// Minimal recursive-descent JSON validator for the obs export tests. The
// obs suite links only iotdb_obs + iotdb_common (so the TSan tier stays a
// small rebuild), hence no third-party JSON parser here: this checks
// well-formedness — strings with escapes, numbers, literals, balanced
// containers, no trailing garbage — which is what the exporters must
// guarantee even with concurrent writers.

#include <cctype>
#include <string>

namespace iotdb {
namespace obs {
namespace testing {

class JsonLint {
 public:
  static bool Valid(const std::string& text) {
    JsonLint lint(text);
    lint.SkipWs();
    if (!lint.Value()) return false;
    lint.SkipWs();
    return lint.pos_ == text.size();
  }

 private:
  explicit JsonLint(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Value() {
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Eat(*p)) return false;
    }
    return true;
  }

  bool Number() {
    Eat('-');
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return true;
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testing
}  // namespace obs
}  // namespace iotdb

#endif  // IOTDB_TESTS_OBS_JSON_LINT_H_
