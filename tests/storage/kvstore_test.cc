#include "storage/kvstore.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "storage/comparator.h"
#include "storage/env.h"

namespace iotdb {
namespace storage {
namespace {

class KVStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.write_buffer_size = 64 * 1024;  // small: force flushes
    options_.l0_compaction_trigger = 4;
    auto result = KVStore::Open(options_, "/db");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    store_ = std::move(result).MoveValueUnsafe();
  }

  void Reopen() {
    store_.reset();
    auto result = KVStore::Open(options_, "/db");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    store_ = std::move(result).MoveValueUnsafe();
  }

  std::string Get(const std::string& key) {
    auto r = store_->Get(ReadOptions(), key);
    return r.ok() ? r.ValueOrDie() : "NOT_FOUND";
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<KVStore> store_;
};

TEST_F(KVStoreTest, PutGet) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k1", "v1").ok());
  EXPECT_EQ(Get("k1"), "v1");
  EXPECT_EQ(Get("missing"), "NOT_FOUND");
}

TEST_F(KVStoreTest, Overwrite) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "v1").ok());
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "v2").ok());
  EXPECT_EQ(Get("k"), "v2");
}

TEST_F(KVStoreTest, DeleteHidesKey) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(store_->Delete(WriteOptions(), "k").ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
}

TEST_F(KVStoreTest, GetSurvivesFlush) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(store_->FlushMemTable().ok());
  EXPECT_EQ(Get("k"), "v");
  auto stats = store_->GetStats();
  EXPECT_GE(stats.memtable_flushes, 1u);
  EXPECT_GE(stats.num_files[0], 1);
}

TEST_F(KVStoreTest, ManyKeysWithFlushesAndCompactions) {
  const int kN = 20000;
  std::string value(100, 'x');
  for (int i = 0; i < kN; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
  }
  store_->WaitForBackgroundWork();
  for (int i = 0; i < kN; i += 997) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    EXPECT_EQ(Get(key), value) << key;
  }
  EXPECT_EQ(store_->CountKeysSlow(), static_cast<uint64_t>(kN));
}

TEST_F(KVStoreTest, ScanRange) {
  for (int i = 0; i < 100; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), key, "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(store_->Scan(ReadOptions(), "k010", "k020", 0, &rows).ok());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.front().first, "k010");
  EXPECT_EQ(rows.back().first, "k019");
}

TEST_F(KVStoreTest, ScanWithLimit) {
  for (int i = 0; i < 50; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), key, "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(store_->Scan(ReadOptions(), "", "", 7, &rows).ok());
  EXPECT_EQ(rows.size(), 7u);
}

TEST_F(KVStoreTest, IteratorForwardBackward) {
  for (int i = 0; i < 10; ++i) {
    char key[8];
    snprintf(key, sizeof(key), "k%d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), key, std::string(1, 'a' + i))
                    .ok());
  }
  auto iter = store_->NewIterator(ReadOptions());
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k9");
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k8");
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k9");
}

TEST_F(KVStoreTest, RecoveryFromWal) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "persist", "me").ok());
  Reopen();
  EXPECT_EQ(Get("persist"), "me");
}

TEST_F(KVStoreTest, RecoveryAfterFlushAndMoreWrites) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(store_->FlushMemTable().ok());
  ASSERT_TRUE(store_->Put(WriteOptions(), "b", "2").ok());
  Reopen();
  EXPECT_EQ(Get("a"), "1");
  EXPECT_EQ(Get("b"), "2");
}

TEST_F(KVStoreTest, SnapshotIsolation) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "old").ok());
  SequenceNumber snap = store_->GetSnapshot();
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "new").ok());
  EXPECT_EQ(Get("k"), "new");
  store_->ReleaseSnapshot(snap);
}

TEST_F(KVStoreTest, WriteBatchAtomicity) {
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Put("y", "2");
  batch.Delete("x");
  ASSERT_TRUE(store_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ(Get("x"), "NOT_FOUND");
  EXPECT_EQ(Get("y"), "2");
}

TEST_F(KVStoreTest, CompactAllMovesDataDown) {
  std::string value(500, 'z');
  for (int i = 0; i < 2000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(store_->CompactAll().ok());
  auto stats = store_->GetStats();
  EXPECT_EQ(stats.num_files[0], 0);
  EXPECT_EQ(store_->CountKeysSlow(), 2000u);
  EXPECT_EQ(Get("key000000"), value);
  EXPECT_EQ(Get("key001999"), value);
}

TEST_F(KVStoreTest, DestroyRemovesEverything) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(store_->FlushMemTable().ok());
  store_.reset();
  ASSERT_TRUE(KVStore::Destroy(options_, "/db").ok());
  auto listing = options_.env->ListDir("/db");
  ASSERT_TRUE(listing.ok());
  EXPECT_TRUE(listing.ValueOrDie().empty());
}

TEST_F(KVStoreTest, DeletionsAcrossFlushBoundaries) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(store_->FlushMemTable().ok());
  ASSERT_TRUE(store_->Delete(WriteOptions(), "k").ok());
  ASSERT_TRUE(store_->FlushMemTable().ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
  auto iter = store_->NewIterator(ReadOptions());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
