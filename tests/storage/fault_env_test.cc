#include "storage/fault_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace storage {
namespace {

TEST(ClassifyFileTest, RecognisesStoreFileClasses) {
  EXPECT_EQ(ClassifyFile("/db/00000001.log"), FileClass::kWal);
  EXPECT_EQ(ClassifyFile("/db/00000007.sst"), FileClass::kSSTable);
  EXPECT_EQ(ClassifyFile("/db/MANIFEST"), FileClass::kManifest);
  EXPECT_EQ(ClassifyFile("/db/MANIFEST.tmp"), FileClass::kManifest);
  EXPECT_EQ(ClassifyFile("/db/LOCK"), FileClass::kOther);
  EXPECT_EQ(ClassifyFile("00000001.log"), FileClass::kWal);  // bare name
}

TEST(FaultInjectionEnvTest, InjectsTargetedAppendErrors) {
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get(), /*seed=*/7);
  FaultRates rates;
  rates.append_error = 1.0;
  fenv.SetRates(FileClass::kWal, rates);

  // Only the WAL class fails; other classes pass through untouched.
  auto wal = fenv.NewWritableFile("/db/00000001.log").MoveValueUnsafe();
  EXPECT_TRUE(wal->Append("x").IsIOError());
  auto sst = fenv.NewWritableFile("/db/00000002.sst").MoveValueUnsafe();
  EXPECT_TRUE(sst->Append("x").ok());

  FaultCounters counters = fenv.counters();
  EXPECT_EQ(counters.append_errors, 1u);
  EXPECT_EQ(counters.TotalInjectedErrors(), 1u);

  // The master switch silences injection without losing the rates.
  fenv.SetInjectionEnabled(false);
  EXPECT_TRUE(wal->Append("x").ok());
  fenv.SetInjectionEnabled(true);
  EXPECT_TRUE(wal->Append("x").IsIOError());
}

TEST(FaultInjectionEnvTest, SyncAndReadErrorsAreInjected) {
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get(), /*seed=*/3);
  ASSERT_TRUE(base->WriteStringToFile("/db/5.sst", "contents").ok());
  FaultRates rates;
  rates.sync_error = 1.0;
  rates.read_error = 1.0;
  fenv.SetRates(FileClass::kSSTable, rates);

  auto file = fenv.NewWritableFile("/db/9.sst").MoveValueUnsafe();
  ASSERT_TRUE(file->Append("x").ok());
  EXPECT_TRUE(file->Sync().IsIOError());

  auto reader = fenv.NewRandomAccessFile("/db/5.sst").MoveValueUnsafe();
  Slice result;
  char scratch[16];
  EXPECT_TRUE(reader->Read(0, 4, &result, scratch).IsIOError());

  FaultCounters counters = fenv.counters();
  EXPECT_EQ(counters.sync_errors, 1u);
  EXPECT_EQ(counters.read_errors, 1u);
}

TEST(FaultInjectionEnvTest, SameSeedSameOpsSameCounters) {
  auto run = [](uint64_t seed) {
    auto base = NewMemEnv();
    FaultInjectionEnv fenv(base.get(), seed);
    FaultRates rates;
    rates.append_error = 0.3;
    rates.sync_error = 0.2;
    fenv.SetRates(FileClass::kWal, rates);
    auto file = fenv.NewWritableFile("/db/1.log").MoveValueUnsafe();
    for (int i = 0; i < 200; ++i) {
      file->Append("record").ok();
      if (i % 10 == 0) file->Sync().ok();
    }
    return fenv.counters();
  };
  FaultCounters a = run(42);
  FaultCounters b = run(42);
  FaultCounters c = run(43);
  EXPECT_GT(a.TotalInjectedErrors(), 0u);
  EXPECT_EQ(a.append_errors, b.append_errors);
  EXPECT_EQ(a.sync_errors, b.sync_errors);
  // A different seed draws a different fault sequence (with 200 ops at
  // these rates, a collision across every counter is vanishingly rare).
  EXPECT_TRUE(a.append_errors != c.append_errors ||
              a.sync_errors != c.sync_errors);
}

TEST(FaultInjectionEnvTest, CrashDropsUnsyncedTailAndNeverSyncedFiles) {
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get(), /*seed=*/11);
  fenv.SetTornTailProbability(0);  // deterministic truncation

  auto synced = fenv.NewWritableFile("/db/a.dat").MoveValueUnsafe();
  ASSERT_TRUE(synced->Append("durable").ok());
  ASSERT_TRUE(synced->Sync().ok());
  ASSERT_TRUE(synced->Append("-volatile").ok());

  auto never_synced = fenv.NewWritableFile("/db/b.dat").MoveValueUnsafe();
  ASSERT_TRUE(never_synced->Append("all lost").ok());

  // A file outside the crashed prefix is untouched.
  auto other = fenv.NewWritableFile("/elsewhere/c.dat").MoveValueUnsafe();
  ASSERT_TRUE(other->Append("untouched").ok());

  ASSERT_TRUE(fenv.Crash("/db").ok());

  std::string contents;
  ASSERT_TRUE(base->ReadFileToString("/db/a.dat", &contents).ok());
  EXPECT_EQ(contents, "durable");
  EXPECT_FALSE(base->FileExists("/db/b.dat"));
  ASSERT_TRUE(base->ReadFileToString("/elsewhere/c.dat", &contents).ok());
  EXPECT_EQ(contents, "untouched");

  FaultCounters counters = fenv.counters();
  EXPECT_EQ(counters.crashes, 1u);
  EXPECT_EQ(counters.files_truncated, 1u);
  EXPECT_EQ(counters.files_dropped, 1u);
  EXPECT_EQ(counters.bytes_dropped,
            std::string("-volatile").size() + std::string("all lost").size());
}

TEST(FaultInjectionEnvTest, TornTailKeepsPartialUnsyncedWalPrefix) {
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get(), /*seed=*/19);
  fenv.SetTornTailProbability(1.0);

  auto wal = fenv.NewWritableFile("/db/1.log").MoveValueUnsafe();
  std::string synced_part(100, 's');
  std::string unsynced_part(1000, 'u');
  ASSERT_TRUE(wal->Append(synced_part).ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Append(unsynced_part).ok());

  ASSERT_TRUE(fenv.Crash("/db").ok());

  std::string contents;
  ASSERT_TRUE(base->ReadFileToString("/db/1.log", &contents).ok());
  // The synced prefix always survives; at most a partial tail follows.
  EXPECT_GE(contents.size(), synced_part.size());
  EXPECT_LT(contents.size(), synced_part.size() + unsynced_part.size());
  EXPECT_EQ(contents.substr(0, 100), synced_part);
}

TEST(FaultInjectionEnvTest, MarkCrashedMakesOperationsFailUntilCleared) {
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get(), /*seed=*/23);
  ASSERT_TRUE(base->WriteStringToFile("/db/x", "data").ok());

  fenv.MarkCrashed("/db");
  EXPECT_TRUE(fenv.NewWritableFile("/db/y").status().IsIOError());
  EXPECT_TRUE(fenv.NewSequentialFile("/db/x").status().IsIOError());
  EXPECT_TRUE(fenv.RemoveFile("/db/x").IsIOError());
  // Other prefixes keep working while /db is "dead".
  EXPECT_TRUE(fenv.NewWritableFile("/other/z").ok());

  fenv.ClearCrashed("/db");
  EXPECT_TRUE(fenv.NewSequentialFile("/db/x").ok());
}

// The crash-recovery contract of the store under the fault env, checked
// over 100 randomized crash points: every batch written before the last
// Sync() survives a crash, recovery never fails on a torn WAL tail, and
// the recovered unsynced batches form an atomic prefix of write order.
TEST(CrashRecoveryPropertyTest, SyncedBatchesSurviveAnyCrash) {
  constexpr int kIterations = 100;
  constexpr int kRowsPerBatch = 5;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    auto base = NewMemEnv();
    FaultInjectionEnv fenv(base.get(), /*seed=*/1000 + iteration);

    Options options;
    options.env = &fenv;
    // Large buffer: no memtable switch, so the whole history sits in one
    // WAL and the sync point cleanly splits durable from volatile batches.
    options.write_buffer_size = 8 * 1024 * 1024;
    options.wal_sync = false;
    auto store = KVStore::Open(options, "/db").MoveValueUnsafe();

    Random rnd(2000 + iteration);
    const int num_batches = 1 + static_cast<int>(rnd.Uniform(30));
    // Batches [0, synced_batches) are covered by the last synced write.
    const int synced_batches =
        static_cast<int>(rnd.Uniform(num_batches + 1));

    auto key = [iteration](int batch, int row) {
      return "it" + std::to_string(iteration) + "-b" +
             std::to_string(batch) + "-r" + std::to_string(row);
    };
    for (int b = 0; b < num_batches; ++b) {
      WriteBatch batch;
      for (int r = 0; r < kRowsPerBatch; ++r) {
        batch.Put(key(b, r), "v" + std::to_string(b));
      }
      WriteOptions write_options;
      write_options.sync = (b == synced_batches - 1);
      ASSERT_TRUE(store->Write(write_options, &batch).ok());
    }

    // Abrupt process death: background threads lose file access first, the
    // store object dies, then all unsynced bytes vanish (possibly leaving
    // a torn WAL tail).
    fenv.MarkCrashed("/db");
    store.reset();
    ASSERT_TRUE(fenv.Crash("/db").ok());
    fenv.ClearCrashed("/db");

    auto reopened = KVStore::Open(options, "/db");
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    store = std::move(reopened).MoveValueUnsafe();

    bool prefix_intact = true;
    for (int b = 0; b < num_batches; ++b) {
      int present = 0;
      for (int r = 0; r < kRowsPerBatch; ++r) {
        auto result = store->Get(ReadOptions(), key(b, r));
        if (result.ok()) {
          ASSERT_EQ(result.ValueOrDie(), "v" + std::to_string(b));
          present++;
        }
      }
      // Batches are atomic: all rows or none.
      ASSERT_TRUE(present == 0 || present == kRowsPerBatch)
          << "batch " << b << " recovered partially (" << present << "/"
          << kRowsPerBatch << " rows)";
      if (b < synced_batches) {
        ASSERT_EQ(present, kRowsPerBatch)
            << "synced batch " << b << " lost in crash";
      }
      // Recovered batches form a prefix of write order.
      if (present == 0) {
        prefix_intact = false;
      } else {
        ASSERT_TRUE(prefix_intact)
            << "batch " << b << " survived after a missing batch";
      }
    }
  }
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
