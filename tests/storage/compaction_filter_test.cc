// Compaction-filter and retention tests.
#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"
#include "iot/kvp.h"
#include "iot/retention.h"
#include "storage/compaction_filter.h"
#include "storage/env.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace storage {
namespace {

/// Drops every entry whose value starts with "drop".
class PrefixDropFilter final : public CompactionFilter {
 public:
  bool ShouldDrop(const Slice&, const Slice& value) const override {
    return value.starts_with("drop");
  }
  const char* Name() const override { return "test.PrefixDrop"; }
};

class CompactionFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.write_buffer_size = 32 * 1024;
    options_.compaction_filter = &filter_;
    store_ = KVStore::Open(options_, "/cf").MoveValueUnsafe();
  }

  PrefixDropFilter filter_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<KVStore> store_;
};

TEST_F(CompactionFilterTest, DropsMatchingEntriesAtCompaction) {
  for (int i = 0; i < 1000; ++i) {
    std::string key = "key" + std::to_string(i);
    std::string value = (i % 3 == 0) ? "drop_me" : "keep_me";
    ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
  }
  // Before compaction everything is visible.
  EXPECT_EQ(store_->CountKeysSlow(), 1000u);

  ASSERT_TRUE(store_->CompactAll().ok());

  // 334 keys (i % 3 == 0) aged out.
  EXPECT_EQ(store_->CountKeysSlow(), 666u);
  EXPECT_TRUE(store_->Get(ReadOptions(), "key0").status().IsNotFound());
  EXPECT_EQ(store_->Get(ReadOptions(), "key1").ValueOrDie(), "keep_me");
}

TEST_F(CompactionFilterTest, NewestVersionDecides) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "drop_old").ok());
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "keep_new").ok());
  ASSERT_TRUE(store_->CompactAll().ok());
  // The newest version says keep, so the key survives.
  EXPECT_EQ(store_->Get(ReadOptions(), "k").ValueOrDie(), "keep_new");
}

TEST_F(CompactionFilterTest, DroppedKeysStayDroppedAfterReopen) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "gone", "drop_me").ok());
  ASSERT_TRUE(store_->Put(WriteOptions(), "stays", "keep_me").ok());
  ASSERT_TRUE(store_->CompactAll().ok());
  store_.reset();
  store_ = KVStore::Open(options_, "/cf").MoveValueUnsafe();
  EXPECT_TRUE(store_->Get(ReadOptions(), "gone").status().IsNotFound());
  EXPECT_EQ(store_->Get(ReadOptions(), "stays").ValueOrDie(), "keep_me");
}

TEST(RetentionFilterTest, DropsOnlyExpiredSensorRows) {
  ManualClock clock(10000ull * 1000000);  // t = 10,000 s
  iot::SensorDataRetentionFilter filter(3600ull * 1000000, &clock);  // 1 h

  std::string fresh =
      iot::KvpCodec::EncodeKey("sub1", "pmu_freq_000",
                               clock.NowMicros() - 1000);
  std::string stale = iot::KvpCodec::EncodeKey(
      "sub1", "pmu_freq_000", clock.NowMicros() - 2 * 3600ull * 1000000);
  EXPECT_FALSE(filter.ShouldDrop(fresh, "v"));
  EXPECT_TRUE(filter.ShouldDrop(stale, "v"));
  // Rows without a timestamp are never dropped.
  EXPECT_FALSE(filter.ShouldDrop("some_admin_key", "v"));
  // A young clock (now < retention) drops nothing.
  ManualClock young(100);
  iot::SensorDataRetentionFilter young_filter(3600ull * 1000000, &young);
  EXPECT_FALSE(young_filter.ShouldDrop(stale, "v"));
}

TEST(RetentionFilterTest, EndToEndAgeOut) {
  ManualClock clock(10000ull * 1000000);
  iot::SensorDataRetentionFilter filter(1000ull * 1000000, &clock);  // 1000s

  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.compaction_filter = &filter;
  auto store = KVStore::Open(options, "/ret").MoveValueUnsafe();

  // 50 readings: half older than the retention window, half inside it.
  for (int i = 0; i < 50; ++i) {
    uint64_t age_seconds = (i < 25) ? (2000 + i) : (10 + i);
    std::string key = iot::KvpCodec::EncodeKey(
        "sub1", "ltc_gas_000",
        clock.NowMicros() - age_seconds * 1000000);
    ASSERT_TRUE(store->Put(WriteOptions(), key, "reading").ok());
  }
  ASSERT_TRUE(store->CompactAll().ok());
  EXPECT_EQ(store->CountKeysSlow(), 25u);
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
