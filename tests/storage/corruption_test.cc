// End-to-end corruption resilience at the storage layer: bit-rot
// injection, full-file integrity verification, quarantine, block-cache
// poisoning regression, corruption status context, WAL recovery drop
// accounting, and a byte-flip fuzz over a whole SSTable.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/cache.h"
#include "storage/corruption_reporter.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/kvstore.h"
#include "storage/table.h"
#include "storage/table_builder.h"

namespace iotdb {
namespace storage {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// --- Bit-rot injection ------------------------------------------------------

TEST(BitRotTest, CorruptFileFlipsExactlyTheRequestedBits) {
  auto env = NewMemEnv();
  FaultInjectionEnv fenv(env.get(), /*seed=*/42);
  const std::string pristine(4096, 'x');
  ASSERT_TRUE(fenv.WriteStringToFile("/data/7.sst", pristine).ok());

  ASSERT_TRUE(fenv.CorruptFile("/data/7.sst", 16).ok());

  std::string damaged;
  ASSERT_TRUE(fenv.ReadFileToString("/data/7.sst", &damaged).ok());
  ASSERT_EQ(damaged.size(), pristine.size());  // bit rot keeps the size
  int bit_diff = 0;
  for (size_t i = 0; i < damaged.size(); ++i) {
    unsigned char x = static_cast<unsigned char>(damaged[i]) ^
                      static_cast<unsigned char>(pristine[i]);
    while (x != 0) {
      bit_diff += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(bit_diff, 16);
  FaultCounters counters = fenv.counters();
  EXPECT_EQ(counters.files_corrupted, 1u);
  EXPECT_EQ(counters.bits_flipped, 16u);
}

TEST(BitRotTest, SameSeedSameDamage) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    auto env = NewMemEnv();
    FaultInjectionEnv fenv(env.get(), /*seed=*/99);
    ASSERT_TRUE(fenv.WriteStringToFile("/f.sst", std::string(1024, 0)).ok());
    ASSERT_TRUE(fenv.CorruptFile("/f.sst", 8).ok());
    ASSERT_TRUE(fenv.ReadFileToString("/f.sst", out).ok());
  }
  EXPECT_EQ(first, second);
}

TEST(BitRotTest, CorruptRandomFileHonoursFileClass) {
  auto env = NewMemEnv();
  FaultInjectionEnv fenv(env.get(), /*seed=*/3);
  ASSERT_TRUE(fenv.WriteStringToFile("/db/4.log", std::string(512, 0)).ok());
  ASSERT_TRUE(fenv.WriteStringToFile("/db/5.sst", std::string(512, 0)).ok());
  ASSERT_TRUE(fenv.WriteStringToFile("/db/MANIFEST", "m").ok());

  auto victim = fenv.CorruptRandomFile("/db", FileClass::kSSTable, 4);
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();
  EXPECT_EQ(victim.ValueOrDie(), "/db/5.sst");

  auto wal = fenv.CorruptRandomFile("/db", FileClass::kWal, 4);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal.ValueOrDie(), "/db/4.log");

  auto none = fenv.CorruptRandomFile("/empty", FileClass::kSSTable, 4);
  EXPECT_TRUE(none.status().IsNotFound());
}

// --- SSTable verification, cache poisoning, status context ------------------

class TableCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.comparator = &icmp_;
    options_.block_size = 512;  // many blocks
  }

  void BuildTable(int entries) {
    model_.clear();
    auto file = env_->NewWritableFile(kPath).MoveValueUnsafe();
    TableBuilder builder(options_, file.get());
    SequenceNumber seq = 1;
    for (int i = 0; i < entries; ++i) {
      char key[24];
      snprintf(key, sizeof(key), "user%06d", i);
      std::string value = "value" + std::to_string(i);
      std::string ikey;
      AppendInternalKey(&ikey, key, seq++, ValueType::kValue);
      builder.Add(ikey, value);
      model_[key] = value;
    }
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE(file->Close().ok());
    ASSERT_TRUE(env_->ReadFileToString(kPath, &pristine_).ok());
  }

  Result<std::unique_ptr<Table>> OpenTable(LruCache* cache = nullptr) {
    auto file = env_->NewRandomAccessFile(kPath).MoveValueUnsafe();
    return Table::Open(options_, std::move(file), cache, next_cache_id_++,
                       kPath);
  }

  void FlipBit(size_t byte, int bit) {
    std::string contents = pristine_;
    contents[byte] = static_cast<char>(contents[byte] ^ (1 << bit));
    ASSERT_TRUE(env_->WriteStringToFile(kPath, contents).ok());
  }

  static constexpr const char* kPath = "/table.sst";
  InternalKeyComparator icmp_{BytewiseComparator()};
  std::unique_ptr<Env> env_;
  Options options_;
  std::map<std::string, std::string> model_;
  std::string pristine_;
  uint64_t next_cache_id_ = 1;
};

TEST_F(TableCorruptionTest, VerifyIntegrityCoversTheWholeFile) {
  BuildTable(1500);
  auto table = OpenTable().MoveValueUnsafe();
  uint64_t bytes_checked = 0;
  ASSERT_TRUE(table->VerifyIntegrity(&bytes_checked).ok());
  // Footer + every block (with trailers) were re-read: nearly the whole
  // file. Restart arrays and trailers are inside blocks, so the only bytes
  // not in some checked region would indicate a hole in the walk.
  EXPECT_GT(bytes_checked, pristine_.size() * 9 / 10);
}

TEST_F(TableCorruptionTest, VerifyIntegrityFindsDamageAnywhere) {
  BuildTable(1500);
  // One flip in the first data block, one near the end (index region).
  for (size_t byte : {size_t{10}, pristine_.size() - 40}) {
    FlipBit(byte, 3);
    auto table = OpenTable();
    if (!table.ok()) {
      EXPECT_TRUE(table.status().IsCorruption());
      continue;  // footer/index damage is caught at open
    }
    Status s = table.ValueOrDie()->VerifyIntegrity();
    EXPECT_TRUE(s.IsCorruption()) << "byte " << byte << ": " << s.ToString();
  }
}

TEST_F(TableCorruptionTest, CorruptionStatusNamesFileAndOffset) {
  BuildTable(1500);
  FlipBit(10, 6);  // inside the first data block
  auto table = OpenTable().MoveValueUnsafe();
  Status s = table->VerifyIntegrity();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find(kPath), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("offset"), std::string::npos) << s.ToString();
}

// Regression: a read with verify_checksums=false must never insert an
// unverified block into the shared cache, where a later verified read
// would trust it (checksum checks are skipped on cache hits).
TEST_F(TableCorruptionTest, UnverifiedReadNeverPoisonsTheCache) {
  BuildTable(1500);
  FlipBit(10, 1);  // first data block
  LruCache cache(1 << 20);
  auto table = OpenTable(&cache).MoveValueUnsafe();

  // Unverified read with caching enabled: the corrupt block must be
  // detected before the insert, not served and cached.
  ReadOptions unverified;
  unverified.verify_checksums = false;
  unverified.fill_cache = true;
  auto iter = table->NewIterator(unverified);
  int rows = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_EQ(iter->value().ToString(),
              model_[ExtractUserKey(iter->key()).ToString()]);
    rows++;
  }
  EXPECT_TRUE(iter->status().IsCorruption()) << iter->status().ToString();
  EXPECT_LT(rows, 1500);

  // A verified scan afterwards must surface the corruption too — it would
  // silently return the damaged rows if the cache had been poisoned.
  ReadOptions verified;
  auto iter2 = table->NewIterator(verified);
  for (iter2->SeekToFirst(); iter2->Valid(); iter2->Next()) {
    ASSERT_EQ(iter2->value().ToString(),
              model_[ExtractUserKey(iter2->key()).ToString()]);
  }
  EXPECT_TRUE(iter2->status().IsCorruption()) << iter2->status().ToString();
}

// Byte-flip fuzz: for every byte of a small SSTable (a seeded stride under
// sanitizers, which multiply runtime), flip one bit and read everything
// back. Every outcome must be either the correct data or a clean
// Corruption/NotFound-style failure — never a crash, hang, or wrong value.
TEST_F(TableCorruptionTest, ByteFlipFuzzNeverReturnsWrongData) {
  BuildTable(300);
  const size_t size = pristine_.size();
  const size_t stride = kSanitized ? 17 : 1;
  Random rng(0xb17f11);
  for (size_t byte = 0; byte < size; byte += stride) {
    FlipBit(byte, static_cast<int>(rng.Uniform(8)));
    auto table = OpenTable();
    if (!table.ok()) continue;  // clean open failure
    auto iter = table.ValueOrDie()->NewIterator(ReadOptions());
    size_t rows = 0;
    bool wrong = false;
    for (iter->SeekToFirst(); iter->Valid() && rows <= model_.size();
         iter->Next()) {
      auto it = model_.find(ExtractUserKey(iter->key()).ToString());
      if (it == model_.end() || iter->value().ToString() != it->second) {
        wrong = true;
        break;
      }
      rows++;
    }
    if (iter->status().ok()) {
      EXPECT_FALSE(wrong) << "byte " << byte << " returned wrong data";
      EXPECT_EQ(rows, model_.size()) << "byte " << byte << " lost rows";
    }
  }
  // Restore so TearDown leaves a consistent file behind.
  ASSERT_TRUE(env_->WriteStringToFile(kPath, pristine_).ok());
}

// --- KVStore scrub, quarantine, WAL recovery accounting ---------------------

// Overwrites one byte of `path` at `offset` with its complement (a change
// guaranteed to differ from the original).
void ComplementByte(Env* env, const std::string& path, uint64_t offset) {
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString(path, &contents).ok());
  ASSERT_LT(offset, contents.size());
  char flipped = static_cast<char>(~contents[static_cast<size_t>(offset)]);
  ASSERT_TRUE(
      env->OverwriteFileRange(path, offset, Slice(&flipped, 1)).ok());
}

class RecordingReporter : public CorruptionReporter {
 public:
  void OnQuarantine(const std::string& path, const Status& cause) override {
    paths.push_back(path);
    causes.push_back(cause);
  }
  std::vector<std::string> paths;
  std::vector<Status> causes;
};

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    fenv_ = std::make_unique<FaultInjectionEnv>(base_env_.get(), 7);
    options_.env = fenv_.get();
    options_.write_buffer_size = 64 * 1024;
    options_.corruption_reporter = &reporter_;
  }

  std::unique_ptr<KVStore> OpenStore() {
    auto result = KVStore::Open(options_, "/db");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).MoveValueUnsafe();
  }

  void FillAndFlush(KVStore* store, int entries) {
    for (int i = 0; i < entries; ++i) {
      ASSERT_TRUE(store
                      ->Put(WriteOptions(), "key" + std::to_string(i),
                            "value" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(store->FlushMemTable().ok());
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultInjectionEnv> fenv_;
  Options options_;
  RecordingReporter reporter_;
};

TEST_F(ScrubTest, CleanStoreVerifiesClean) {
  auto store = OpenStore();
  FillAndFlush(store.get(), 500);
  ScrubReport report;
  ASSERT_TRUE(store->VerifyIntegrity(&report).ok());
  EXPECT_GT(report.files_checked, 0u);
  EXPECT_GT(report.bytes_checked, 0u);
  EXPECT_EQ(report.corrupt_files, 0u);
  EXPECT_EQ(report.quarantined_files, 0u);
  EXPECT_TRUE(reporter_.paths.empty());
}

TEST_F(ScrubTest, ScrubQuarantinesCorruptTableAndStoreStaysLive) {
  auto store = OpenStore();
  FillAndFlush(store.get(), 500);
  auto victim = fenv_->CorruptRandomFile("/db", FileClass::kSSTable, 32);
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();

  ScrubReport report;
  ASSERT_TRUE(store->VerifyIntegrity(&report).ok());
  EXPECT_EQ(report.corrupt_files, 1u);
  EXPECT_EQ(report.quarantined_files, 1u);
  ASSERT_EQ(report.corrupt_paths.size(), 1u);
  EXPECT_EQ(report.corrupt_paths[0], victim.ValueOrDie());

  // The file was moved aside, reported, and counted.
  EXPECT_FALSE(fenv_->FileExists(victim.ValueOrDie()));
  EXPECT_TRUE(fenv_->FileExists(victim.ValueOrDie() + ".quarantined"));
  ASSERT_EQ(reporter_.paths.size(), 1u);
  EXPECT_EQ(reporter_.paths[0], victim.ValueOrDie());
  EXPECT_TRUE(reporter_.causes[0].IsCorruption());
  EXPECT_EQ(store->GetStats().quarantined_files, 1u);

  // The store keeps serving: reads are OK or NotFound (never corrupt data),
  // writes and a second scrub work.
  for (int i = 0; i < 500; ++i) {
    auto r = store->Get(ReadOptions(), "key" + std::to_string(i));
    if (r.ok()) {
      EXPECT_EQ(r.ValueOrDie(), "value" + std::to_string(i));
    } else {
      EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
    }
  }
  ASSERT_TRUE(store->Put(WriteOptions(), "after", "quarantine").ok());
  ScrubReport second;
  ASSERT_TRUE(store->VerifyIntegrity(&second).ok());
  EXPECT_EQ(second.corrupt_files, 0u);
}

TEST_F(ScrubTest, ReadPathQuarantinesCorruptTable) {
  auto store = OpenStore();
  FillAndFlush(store.get(), 500);
  ASSERT_TRUE(fenv_->CorruptRandomFile("/db", FileClass::kSSTable, 32).ok());

  // The first read through the damaged block reports corruption and
  // quarantines the file; later reads miss cleanly instead of failing
  // forever.
  int corrupt_seen = 0;
  for (int i = 0; i < 500; ++i) {
    auto r = store->Get(ReadOptions(), "key" + std::to_string(i));
    if (!r.ok() && r.status().IsCorruption()) corrupt_seen++;
  }
  ASSERT_GT(corrupt_seen, 0);
  EXPECT_EQ(store->GetStats().quarantined_files, 1u);
  EXPECT_EQ(reporter_.paths.size(), 1u);
  for (int i = 0; i < 500; ++i) {
    auto r = store->Get(ReadOptions(), "key" + std::to_string(i));
    EXPECT_TRUE(r.ok() || r.status().IsNotFound())
        << r.status().ToString();
  }
}

TEST_F(ScrubTest, ReopenQuarantinesTableThatFailsToLoad) {
  {
    auto store = OpenStore();
    FillAndFlush(store.get(), 500);
  }
  // Damage the table's footer region: Table::Open fails during manifest
  // load, and recovery must quarantine instead of refusing to start.
  auto files = fenv_->ListDir("/db").MoveValueUnsafe();
  std::string sst;
  for (const auto& f : files) {
    if (ClassifyFile(f) == FileClass::kSSTable) sst = "/db/" + f;
  }
  ASSERT_FALSE(sst.empty());
  uint64_t size = fenv_->FileSize(sst).ValueOrDie();
  ComplementByte(fenv_.get(), sst, size - 5);  // inside the footer magic

  auto store = OpenStore();
  EXPECT_EQ(store->GetStats().quarantined_files, 1u);
  EXPECT_TRUE(fenv_->FileExists(sst + ".quarantined"));
  ASSERT_EQ(reporter_.paths.size(), 1u);
  EXPECT_EQ(reporter_.paths[0], sst);
  // Still a working store.
  ASSERT_TRUE(store->Put(WriteOptions(), "k", "v").ok());
  EXPECT_EQ(store->Get(ReadOptions(), "k").ValueOrDie(), "v");
}

TEST_F(ScrubTest, BackgroundScrubPacesBetweenCompactions) {
  options_.background_scrub = true;
  auto store = OpenStore();
  FillAndFlush(store.get(), 500);
  store->WaitForBackgroundWork();
  KVStoreStats stats = store->GetStats();
  EXPECT_GE(stats.scrubbed_files, 1u);  // the flushed table was scrubbed
  EXPECT_EQ(stats.quarantined_files, 0u);
}

TEST_F(ScrubTest, WalRecoveryDroppedBytesAreCounted) {
  {
    auto store = OpenStore();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(store
                      ->Put(WriteOptions(), "key" + std::to_string(i),
                            std::string(100, 'w'))
                      .ok());
    }
    // No flush: everything lives in the WAL.
  }
  auto files = fenv_->ListDir("/db").MoveValueUnsafe();
  std::string wal;
  for (const auto& f : files) {
    if (ClassifyFile(f) == FileClass::kWal) wal = "/db/" + f;
  }
  ASSERT_FALSE(wal.empty());
  uint64_t size = fenv_->FileSize(wal).ValueOrDie();
  ASSERT_GT(size, 0u);
  ComplementByte(fenv_.get(), wal, size / 2);

  auto store = OpenStore();
  EXPECT_GT(store->GetStats().wal_recovery_dropped_bytes, 0u);
  // Records before the damage survived.
  EXPECT_EQ(store->Get(ReadOptions(), "key0").ValueOrDie(),
            std::string(100, 'w'));
}

TEST_F(ScrubTest, LiveWalTailIsVerified) {
  auto store = OpenStore();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  ScrubReport report;
  ASSERT_TRUE(store->VerifyIntegrity(&report).ok());
  EXPECT_EQ(report.wal_dropped_bytes, 0u);

  // Rot the live WAL: the next scrub must notice (the WAL is never
  // quarantined — the damage only costs the unsynced tail on recovery).
  auto files = fenv_->ListDir("/db").MoveValueUnsafe();
  std::string wal;
  for (const auto& f : files) {
    if (ClassifyFile(f) == FileClass::kWal) wal = "/db/" + f;
  }
  ASSERT_FALSE(wal.empty());
  // Damage a payload byte of the first record (offset 9 = past the 7-byte
  // record header): a payload flip always fails the record CRC. A flip in a
  // length field instead can mimic a torn tail, which the reader forgives
  // by design.
  ComplementByte(fenv_.get(), wal, 9);
  ScrubReport damaged;
  ASSERT_TRUE(store->VerifyIntegrity(&damaged).ok());
  EXPECT_GT(damaged.wal_dropped_bytes, 0u);
  EXPECT_EQ(damaged.quarantined_files, 0u);
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
