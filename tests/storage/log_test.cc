// WAL record format tests: round trips, block-boundary fragmentation,
// corruption handling, and WriteBatch round trips.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "storage/env.h"
#include "storage/log_reader.h"
#include "storage/log_writer.h"
#include "storage/write_batch.h"

namespace iotdb {
namespace storage {
namespace {

class CountingReporter final : public log::Reader::Reporter {
 public:
  size_t corruption_bytes = 0;
  int corruption_count = 0;
  void Corruption(size_t bytes, const Status&) override {
    corruption_bytes += bytes;
    corruption_count++;
  }
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  void WriteRecords(const std::vector<std::string>& records) {
    auto file = env_->NewWritableFile("/wal").MoveValueUnsafe();
    log::Writer writer(file.get());
    for (const std::string& record : records) {
      ASSERT_TRUE(writer.AddRecord(record).ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }

  std::vector<std::string> ReadRecords(CountingReporter* reporter) {
    auto file = env_->NewSequentialFile("/wal").MoveValueUnsafe();
    log::Reader reader(file.get(), reporter, /*checksum=*/true);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    return records;
  }

  void CorruptByte(size_t offset, char delta) {
    std::string contents;
    ASSERT_TRUE(env_->ReadFileToString("/wal", &contents).ok());
    contents[offset] += delta;
    ASSERT_TRUE(env_->WriteStringToFile("/wal", contents).ok());
  }

  std::unique_ptr<Env> env_;
};

TEST_F(LogTest, EmptyLog) {
  WriteRecords({});
  CountingReporter reporter;
  EXPECT_TRUE(ReadRecords(&reporter).empty());
  EXPECT_EQ(reporter.corruption_count, 0);
}

TEST_F(LogTest, SmallRecordsRoundTrip) {
  std::vector<std::string> records = {"foo", "bar", "", "xxxx"};
  WriteRecords(records);
  CountingReporter reporter;
  EXPECT_EQ(ReadRecords(&reporter), records);
  EXPECT_EQ(reporter.corruption_count, 0);
}

TEST_F(LogTest, RecordsSpanningBlocks) {
  // Records larger than the 32 KiB block must fragment and reassemble.
  Random rng(5);
  std::vector<std::string> records;
  for (size_t len : {100ul, 32768ul, 32769ul, 100000ul, 3ul}) {
    records.push_back(rng.RandomPrintableString(len));
  }
  WriteRecords(records);
  CountingReporter reporter;
  EXPECT_EQ(ReadRecords(&reporter), records);
  EXPECT_EQ(reporter.corruption_count, 0);
}

TEST_F(LogTest, ManyRecordsAcrossBlockBoundaries) {
  Random rng(6);
  std::vector<std::string> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back(rng.RandomPrintableString(rng.Uniform(300)));
  }
  WriteRecords(records);
  CountingReporter reporter;
  EXPECT_EQ(ReadRecords(&reporter), records);
}

TEST_F(LogTest, ChecksumCorruptionIsDetectedAndSkipped) {
  WriteRecords({"first", "second", "third"});
  // Corrupt a payload byte of the first record (after the 7-byte header).
  CorruptByte(log::kHeaderSize + 1, 1);
  CountingReporter reporter;
  std::vector<std::string> records = ReadRecords(&reporter);
  EXPECT_GE(reporter.corruption_count, 1);
  // The first record is dropped with the rest of its block prefix; later
  // records in the same block are also unreachable, but the reader must not
  // crash or return corrupted data.
  for (const std::string& r : records) {
    EXPECT_TRUE(r == "second" || r == "third");
  }
}

TEST_F(LogTest, TruncatedTailIsTreatedAsCleanEof) {
  WriteRecords({"complete", std::string(50000, 'x')});
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/wal", &contents).ok());
  // Chop mid-way through the second (fragmented) record.
  contents.resize(contents.size() - 10000);
  ASSERT_TRUE(env_->WriteStringToFile("/wal", contents).ok());

  CountingReporter reporter;
  std::vector<std::string> records = ReadRecords(&reporter);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "complete");
}

TEST(WriteBatchTest, CountAndSequence) {
  WriteBatch batch;
  EXPECT_EQ(batch.Count(), 0);
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  EXPECT_EQ(batch.Count(), 3);
  batch.SetSequence(100);
  EXPECT_EQ(batch.sequence(), 100u);
}

TEST(WriteBatchTest, IterateReplaysOperations) {
  WriteBatch batch;
  batch.Put("k1", "v1");
  batch.Delete("k2");
  batch.Put("k3", "v3");

  struct Collector : public WriteBatch::Handler {
    std::vector<std::string> ops;
    void Put(const Slice& key, const Slice& value) override {
      ops.push_back("PUT " + key.ToString() + "=" + value.ToString());
    }
    void Delete(const Slice& key) override {
      ops.push_back("DEL " + key.ToString());
    }
  } collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  ASSERT_EQ(collector.ops.size(), 3u);
  EXPECT_EQ(collector.ops[0], "PUT k1=v1");
  EXPECT_EQ(collector.ops[1], "DEL k2");
  EXPECT_EQ(collector.ops[2], "PUT k3=v3");
}

TEST(WriteBatchTest, ContentsRoundTrip) {
  WriteBatch batch;
  batch.SetSequence(7);
  batch.Put("key", std::string(500, 'v'));
  WriteBatch restored;
  ASSERT_TRUE(WriteBatch::SetContents(&restored, batch.Contents()).ok());
  EXPECT_EQ(restored.Count(), 1);
  EXPECT_EQ(restored.sequence(), 7u);
}

TEST(WriteBatchTest, AppendMergesCounts) {
  WriteBatch a, b;
  a.Put("x", "1");
  b.Put("y", "2");
  b.Delete("z");
  a.Append(b);
  EXPECT_EQ(a.Count(), 3);
}

TEST(WriteBatchTest, CorruptContentsRejected) {
  WriteBatch batch;
  EXPECT_TRUE(WriteBatch::SetContents(&batch, Slice("tiny")).IsCorruption());
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
