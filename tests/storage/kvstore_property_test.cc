// Property-based testing of the KVStore against an in-memory reference
// model: random interleavings of puts, deletes, batched writes, flushes,
// compactions, and reopen cycles must keep every read path (Get, forward
// scan, backward scan) consistent with a std::map.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "storage/env.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace storage {
namespace {

class KVStorePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.write_buffer_size = 16 * 1024;
    options_.block_size = 512;
    options_.l0_compaction_trigger = 3;
    Open();
  }

  void Open() {
    store_ = KVStore::Open(options_, "/prop").MoveValueUnsafe();
  }

  void Reopen() {
    store_.reset();
    Open();
  }

  std::string RandomKey(Random* rng) {
    // A small keyspace ensures frequent overwrites and deletes.
    return "key" + std::to_string(rng->Uniform(200));
  }

  void CheckEverythingMatches(const std::map<std::string, std::string>& model) {
    // Point reads.
    for (const auto& [key, value] : model) {
      auto r = store_->Get(ReadOptions(), key);
      ASSERT_TRUE(r.ok()) << key << ": " << r.status().ToString();
      ASSERT_EQ(r.ValueOrDie(), value) << key;
    }
    // Forward scan over everything.
    auto iter = store_->NewIterator(ReadOptions());
    auto expected = model.begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
      ASSERT_NE(expected, model.end()) << "extra key " << iter->key()
                                             .ToString();
      ASSERT_EQ(iter->key().ToString(), expected->first);
      ASSERT_EQ(iter->value().ToString(), expected->second);
    }
    ASSERT_EQ(expected, model.end()) << "iterator ended early";
    ASSERT_TRUE(iter->status().ok());

    // Backward scan.
    auto riter = store_->NewIterator(ReadOptions());
    auto rexpected = model.rbegin();
    for (riter->SeekToLast(); riter->Valid(); riter->Prev(), ++rexpected) {
      ASSERT_NE(rexpected, model.rend());
      ASSERT_EQ(riter->key().ToString(), rexpected->first);
      ASSERT_EQ(riter->value().ToString(), rexpected->second);
    }
    ASSERT_EQ(rexpected, model.rend());
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<KVStore> store_;
};

TEST_P(KVStorePropertyTest, MatchesReferenceModel) {
  Random rng(GetParam());
  std::map<std::string, std::string> model;

  const int kSteps = 1500;
  for (int step = 0; step < kSteps; ++step) {
    int op = static_cast<int>(rng.Uniform(100));
    if (op < 55) {
      std::string key = RandomKey(&rng);
      std::string value = rng.RandomPrintableString(rng.Uniform(120) + 1);
      ASSERT_TRUE(store_->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    } else if (op < 70) {
      std::string key = RandomKey(&rng);
      ASSERT_TRUE(store_->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else if (op < 85) {
      WriteBatch batch;
      for (int i = 0; i < 10; ++i) {
        std::string key = RandomKey(&rng);
        if (rng.OneIn(4)) {
          batch.Delete(key);
          model.erase(key);
        } else {
          std::string value = rng.RandomPrintableString(30);
          batch.Put(key, value);
          model[key] = value;
        }
      }
      ASSERT_TRUE(store_->Write(WriteOptions(), &batch).ok());
    } else if (op < 92) {
      ASSERT_TRUE(store_->FlushMemTable().ok());
    } else if (op < 97) {
      store_->WaitForBackgroundWork();
    } else if (op < 99) {
      ASSERT_TRUE(store_->CompactAll().ok());
    } else {
      Reopen();
    }

    if (step % 300 == 299) CheckEverythingMatches(model);
  }
  CheckEverythingMatches(model);

  // Final durability check: everything survives a reopen.
  Reopen();
  CheckEverythingMatches(model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KVStorePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 101, 202, 303));

}  // namespace
}  // namespace storage
}  // namespace iotdb
