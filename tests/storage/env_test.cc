#include "storage/env.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace iotdb {
namespace storage {
namespace {

class MemEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }
  std::unique_ptr<Env> env_;
};

TEST_F(MemEnvTest, WriteThenReadBack) {
  ASSERT_TRUE(env_->WriteStringToFile("/dir/file", "hello world").ok());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/dir/file", &contents).ok());
  EXPECT_EQ(contents, "hello world");
  EXPECT_TRUE(env_->FileExists("/dir/file"));
  EXPECT_FALSE(env_->FileExists("/dir/other"));
  EXPECT_EQ(env_->FileSize("/dir/file").ValueOrDie(), 11u);
}

TEST_F(MemEnvTest, AppendAccumulates) {
  auto file = env_->NewWritableFile("/f").MoveValueUnsafe();
  ASSERT_TRUE(file->Append("abc").ok());
  ASSERT_TRUE(file->Append("def").ok());
  ASSERT_TRUE(file->Close().ok());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/f", &contents).ok());
  EXPECT_EQ(contents, "abcdef");
}

TEST_F(MemEnvTest, RandomAccessReads) {
  ASSERT_TRUE(env_->WriteStringToFile("/f", "0123456789").ok());
  auto file = env_->NewRandomAccessFile("/f").MoveValueUnsafe();
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "3456");
  // Read past EOF truncates.
  ASSERT_TRUE(file->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "89");
  ASSERT_TRUE(file->Read(100, 10, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(file->Size(), 10u);
}

TEST_F(MemEnvTest, SequentialReadAndSkip) {
  ASSERT_TRUE(env_->WriteStringToFile("/f", "abcdefghij").ok());
  auto file = env_->NewSequentialFile("/f").MoveValueUnsafe();
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "abc");
  ASSERT_TRUE(file->Skip(4).ok());
  ASSERT_TRUE(file->Read(10, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "hij");
}

TEST_F(MemEnvTest, ListDirIsShallow) {
  ASSERT_TRUE(env_->WriteStringToFile("/db/a.sst", "x").ok());
  ASSERT_TRUE(env_->WriteStringToFile("/db/b.log", "x").ok());
  ASSERT_TRUE(env_->WriteStringToFile("/db/sub/c.sst", "x").ok());
  ASSERT_TRUE(env_->WriteStringToFile("/other/d.sst", "x").ok());
  auto listing = env_->ListDir("/db").ValueOrDie();
  std::sort(listing.begin(), listing.end());
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0], "a.sst");
  EXPECT_EQ(listing[1], "b.log");
}

TEST_F(MemEnvTest, RenameAndRemove) {
  ASSERT_TRUE(env_->WriteStringToFile("/f1", "data").ok());
  ASSERT_TRUE(env_->RenameFile("/f1", "/f2").ok());
  EXPECT_FALSE(env_->FileExists("/f1"));
  EXPECT_TRUE(env_->FileExists("/f2"));
  ASSERT_TRUE(env_->RemoveFile("/f2").ok());
  EXPECT_FALSE(env_->FileExists("/f2"));
  EXPECT_FALSE(env_->RemoveFile("/f2").ok());
}

TEST_F(MemEnvTest, MissingFilesAreErrors) {
  EXPECT_FALSE(env_->NewRandomAccessFile("/missing").ok());
  EXPECT_FALSE(env_->NewSequentialFile("/missing").ok());
  EXPECT_FALSE(env_->FileSize("/missing").ok());
}

TEST(PosixEnvTest, RoundTripInTempDir) {
  Env* env = Env::Posix();
  std::string dir =
      (std::filesystem::temp_directory_path() / "iotdb_env_test").string();
  ASSERT_TRUE(env->CreateDir(dir).ok());
  std::string path = dir + "/file.txt";
  ASSERT_TRUE(env->WriteStringToFile(path, "posix data").ok());
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "posix data");
  EXPECT_TRUE(env->FileExists(path));
  auto listing = env->ListDir(dir).ValueOrDie();
  EXPECT_NE(std::find(listing.begin(), listing.end(), "file.txt"),
            listing.end());
  ASSERT_TRUE(env->RemoveFile(path).ok());
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
