// Merging-iterator and DBIter edge cases, plus a multi-threaded
// reader/writer stress test of the store.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "common/random.h"
#include "storage/comparator.h"
#include "storage/db_iter.h"
#include "storage/env.h"
#include "storage/kvstore.h"
#include "storage/memtable.h"
#include "storage/merger.h"

namespace iotdb {
namespace storage {
namespace {

/// Simple vector-backed iterator for merger tests.
class VectorIterator final : public Iterator {
 public:
  explicit VectorIterator(
      std::vector<std::pair<std::string, std::string>> entries)
      : entries_(std::move(entries)), index_(entries_.size()) {}

  bool Valid() const override { return index_ < entries_.size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = entries_.empty() ? 0 : entries_.size() - 1;
    if (entries_.empty()) index_ = entries_.size();
  }
  void Seek(const Slice& target) override {
    index_ = 0;
    while (index_ < entries_.size() &&
           Slice(entries_[index_].first).compare(target) < 0) {
      ++index_;
    }
  }
  void Next() override { ++index_; }
  void Prev() override {
    if (index_ == 0) {
      index_ = entries_.size();
    } else {
      --index_;
    }
  }
  Slice key() const override { return entries_[index_].first; }
  Slice value() const override { return entries_[index_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t index_;
};

TEST(MergingIteratorTest, MergesSortedStreams) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"a", "1"},
                                                       {"d", "4"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"b", "2"},
                                                       {"e", "5"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"c", "3"}}));

  auto merged = NewMergingIterator(BytewiseComparator(),
                                   std::move(children));
  std::string keys;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    keys += merged->key().ToString();
  }
  EXPECT_EQ(keys, "abcde");

  keys.clear();
  for (merged->SeekToLast(); merged->Valid(); merged->Prev()) {
    keys += merged->key().ToString();
  }
  EXPECT_EQ(keys, "edcba");
}

TEST(MergingIteratorTest, SeekAndDirectionSwitch) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"a", "1"},
                                                       {"c", "3"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{"b", "2"},
                                                       {"d", "4"}}));
  auto merged = NewMergingIterator(BytewiseComparator(),
                                   std::move(children));
  merged->Seek("b");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key().ToString(), "b");
  merged->Next();
  EXPECT_EQ(merged->key().ToString(), "c");
  merged->Prev();  // direction switch
  EXPECT_EQ(merged->key().ToString(), "b");
  merged->Prev();
  EXPECT_EQ(merged->key().ToString(), "a");
  merged->Next();  // switch again
  EXPECT_EQ(merged->key().ToString(), "b");
}

TEST(MergingIteratorTest, EmptyChildrenAreEmpty) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{}));
  auto merged = NewMergingIterator(BytewiseComparator(),
                                   std::move(children));
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

class DBIterTest : public ::testing::Test {
 protected:
  DBIterTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~DBIterTest() override { mem_->Unref(); }

  std::unique_ptr<Iterator> MakeDBIter(SequenceNumber snapshot) {
    return NewDBIterator(&icmp_, mem_->NewIterator(), snapshot);
  }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(DBIterTest, CollapsesVersionsToNewestVisible) {
  mem_->Add(1, ValueType::kValue, "k", "v1");
  mem_->Add(5, ValueType::kValue, "k", "v5");
  mem_->Add(9, ValueType::kValue, "k", "v9");

  auto at9 = MakeDBIter(9);
  at9->SeekToFirst();
  ASSERT_TRUE(at9->Valid());
  EXPECT_EQ(at9->value().ToString(), "v9");
  at9->Next();
  EXPECT_FALSE(at9->Valid());

  auto at5 = MakeDBIter(5);
  at5->SeekToFirst();
  ASSERT_TRUE(at5->Valid());
  EXPECT_EQ(at5->value().ToString(), "v5");
}

TEST_F(DBIterTest, TombstoneHidesOlderVersions) {
  mem_->Add(1, ValueType::kValue, "a", "va");
  mem_->Add(2, ValueType::kValue, "b", "vb");
  mem_->Add(3, ValueType::kDeletion, "a", "");

  auto iter = MakeDBIter(10);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "b");
  iter->Next();
  EXPECT_FALSE(iter->Valid());

  // At a snapshot before the delete, "a" is visible.
  auto old_iter = MakeDBIter(2);
  old_iter->SeekToFirst();
  ASSERT_TRUE(old_iter->Valid());
  EXPECT_EQ(old_iter->key().ToString(), "a");
}

TEST_F(DBIterTest, ReverseIterationSkipsTombstonesAndVersions) {
  mem_->Add(1, ValueType::kValue, "a", "va1");
  mem_->Add(2, ValueType::kValue, "b", "vb");
  mem_->Add(3, ValueType::kValue, "c", "vc");
  mem_->Add(4, ValueType::kDeletion, "b", "");
  mem_->Add(5, ValueType::kValue, "a", "va5");

  auto iter = MakeDBIter(10);
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "c");
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "a");
  EXPECT_EQ(iter->value().ToString(), "va5");
  iter->Prev();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(DBIterTest, SeekSkipsDeletedRange) {
  mem_->Add(1, ValueType::kValue, "a", "1");
  mem_->Add(2, ValueType::kValue, "b", "2");
  mem_->Add(3, ValueType::kDeletion, "b", "");
  mem_->Add(4, ValueType::kValue, "c", "3");

  auto iter = MakeDBIter(10);
  iter->Seek("b");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "c");
}

TEST(KVStoreConcurrencyTest, ParallelWritersAndReaders) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.write_buffer_size = 64 * 1024;
  auto store = KVStore::Open(options, "/stress").MoveValueUnsafe();

  constexpr int kWriters = 3;
  constexpr int kKeysPerWriter = 3000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      std::string value(200, static_cast<char>('a' + w));
      for (int i = 0; i < kKeysPerWriter; ++i) {
        char key[32];
        snprintf(key, sizeof(key), "w%d-%06d", w, i);
        ASSERT_TRUE(store->Put(WriteOptions(), key, value).ok());
      }
    });
  }
  // Two readers scanning and point-reading concurrently with the writers.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&store, &stop, &reads, r] {
      Random rng(r + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        char key[32];
        snprintf(key, sizeof(key), "w%d-%06d",
                 static_cast<int>(rng.Uniform(kWriters)),
                 static_cast<int>(rng.Uniform(kKeysPerWriter)));
        auto result = store->Get(ReadOptions(), key);
        ASSERT_TRUE(result.ok() || result.status().IsNotFound());
        auto iter = store->NewIterator(ReadOptions());
        iter->Seek(key);
        int n = 0;
        while (iter->Valid() && n < 20) {
          iter->Next();
          ++n;
        }
        ASSERT_TRUE(iter->status().ok());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  store->WaitForBackgroundWork();
  EXPECT_EQ(store->CountKeysSlow(),
            static_cast<uint64_t>(kWriters) * kKeysPerWriter);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
