// Property sweeps over the on-disk formats: WAL record framing with random
// record-size mixes, block encoding with random key shapes, and table
// round trips — all parameterised over seeds.
#include <gtest/gtest.h>

#include <map>

#include "common/histogram.h"
#include "common/random.h"
#include "storage/block.h"
#include "storage/block_builder.h"
#include "storage/comparator.h"
#include "storage/env.h"
#include "storage/log_reader.h"
#include "storage/log_writer.h"

namespace iotdb {
namespace storage {
namespace {

class WalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalPropertyTest, RandomRecordMixRoundTrips) {
  Random rng(GetParam());
  auto env = NewMemEnv();

  std::vector<std::string> records;
  // Mix of sizes: empty, tiny, near block boundary, multi-block.
  for (int i = 0; i < 200; ++i) {
    size_t len;
    switch (rng.Uniform(5)) {
      case 0:
        len = 0;
        break;
      case 1:
        len = rng.Uniform(64);
        break;
      case 2:
        len = 32768 - log::kHeaderSize + rng.Uniform(16) - 8;
        break;
      case 3:
        len = rng.Uniform(100000);
        break;
      default:
        len = rng.Uniform(2048);
        break;
    }
    records.push_back(rng.RandomPrintableString(len));
  }

  {
    auto file = env->NewWritableFile("/wal").MoveValueUnsafe();
    log::Writer writer(file.get());
    for (const std::string& record : records) {
      ASSERT_TRUE(writer.AddRecord(record).ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }

  auto file = env->NewSequentialFile("/wal").MoveValueUnsafe();
  log::Reader reader(file.get(), nullptr, true);
  Slice record;
  std::string scratch;
  size_t index = 0;
  while (reader.ReadRecord(&record, &scratch)) {
    ASSERT_LT(index, records.size());
    ASSERT_EQ(record.ToString(), records[index]) << "record " << index;
    ++index;
  }
  EXPECT_EQ(index, records.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

class BlockPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(BlockPropertyTest, RandomKeysRoundTripAndSeek) {
  auto [seed, restart_interval] = GetParam();
  Random rng(seed);

  // Random keys with heavy shared prefixes (stresses delta encoding).
  std::map<std::string, std::string> model;
  for (int i = 0; i < 400; ++i) {
    std::string key = "prefix" + std::to_string(rng.Uniform(10)) + "/" +
                      rng.RandomPrintableString(rng.Uniform(20) + 1);
    model[key] = rng.RandomPrintableString(rng.Uniform(60));
  }

  BlockBuilder builder(restart_interval, BytewiseComparator());
  for (const auto& [key, value] : model) builder.Add(key, value);
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());

  // Full forward pass.
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    ASSERT_EQ(iter->key().ToString(), key);
    ASSERT_EQ(iter->value().ToString(), value);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Random seeks land on lower bounds.
  for (int i = 0; i < 100; ++i) {
    std::string target = "prefix" + std::to_string(rng.Uniform(11)) + "/" +
                         rng.RandomPrintableString(rng.Uniform(20));
    iter->Seek(target);
    auto expected = model.lower_bound(target);
    if (expected == model.end()) {
      EXPECT_FALSE(iter->Valid()) << target;
    } else {
      ASSERT_TRUE(iter->Valid()) << target;
      EXPECT_EQ(iter->key().ToString(), expected->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRestarts, BlockPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1, 4, 16, 64)));

class HistogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramPropertyTest, PercentilesAreMonotoneAndBounded) {
  Random rng(GetParam());
  Histogram hist;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform values spanning six decades.
    hist.Add(1 + rng.Uniform(1ull << rng.Uniform(20)));
  }
  double previous = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double value = hist.Percentile(p);
    EXPECT_GE(value, previous) << "p" << p;
    EXPECT_GE(value, static_cast<double>(hist.min()));
    EXPECT_LE(value, static_cast<double>(hist.max()));
    previous = value;
  }
  // The geometric buckets guarantee ~5% resolution: the median of a known
  // constant stream is near-exact.
  Histogram constant;
  for (int i = 0; i < 100; ++i) constant.Add(777);
  EXPECT_NEAR(constant.Median(), 777, 777 * 0.06);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Values(5, 6, 7, 8));

}  // namespace
}  // namespace storage
}  // namespace iotdb
