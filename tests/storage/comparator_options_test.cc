// Comparator helper tests plus a parameterised engine-configuration sweep:
// the store must behave identically across block sizes, restart intervals,
// bloom settings, and write-buffer sizes.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/random.h"
#include "storage/comparator.h"
#include "storage/env.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace storage {
namespace {

TEST(BytewiseComparatorTest, FindShortestSeparatorShortens) {
  const Comparator* cmp = BytewiseComparator();
  std::string start = "abcdefghij";
  cmp->FindShortestSeparator(&start, "abcdxyz");
  // Separator must satisfy start <= sep < limit.
  EXPECT_GE(start, std::string("abcd"));
  EXPECT_LT(start, std::string("abcdxyz"));
  EXPECT_LE(start.size(), 5u);
}

TEST(BytewiseComparatorTest, SeparatorNoopWhenPrefix) {
  const Comparator* cmp = BytewiseComparator();
  std::string start = "abc";
  cmp->FindShortestSeparator(&start, "abcdef");  // start is a prefix
  EXPECT_EQ(start, "abc");

  std::string equal = "same";
  cmp->FindShortestSeparator(&equal, "same");
  EXPECT_EQ(equal, "same");
}

TEST(BytewiseComparatorTest, FindShortSuccessorIncrements) {
  const Comparator* cmp = BytewiseComparator();
  std::string key = "abc";
  cmp->FindShortSuccessor(&key);
  EXPECT_EQ(key, "b");

  std::string all_ff(3, '\xff');
  std::string copy = all_ff;
  cmp->FindShortSuccessor(&copy);
  EXPECT_EQ(copy, all_ff);  // cannot be shortened
}

TEST(BytewiseComparatorTest, Name) {
  EXPECT_STREQ(BytewiseComparator()->Name(), "iotdb.BytewiseComparator");
}

// (block_size, restart_interval, bloom_bits, write_buffer)
using EngineConfig = std::tuple<size_t, int, int, size_t>;

class EngineConfigTest : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(EngineConfigTest, StoreIsCorrectUnderAnyTuning) {
  auto [block_size, restart_interval, bloom_bits, write_buffer] = GetParam();
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.block_size = block_size;
  options.block_restart_interval = restart_interval;
  options.bloom_bits_per_key = bloom_bits;
  options.write_buffer_size = write_buffer;
  options.l0_compaction_trigger = 3;
  auto store = KVStore::Open(options, "/cfg").MoveValueUnsafe();

  std::map<std::string, std::string> model;
  Random rng(static_cast<uint64_t>(block_size) * 31 + bloom_bits);
  for (int i = 0; i < 2500; ++i) {
    std::string key = "key" + std::to_string(rng.Uniform(800));
    if (rng.OneIn(6)) {
      ASSERT_TRUE(store->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else {
      std::string value = rng.RandomPrintableString(rng.Uniform(200) + 1);
      ASSERT_TRUE(store->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    }
  }
  ASSERT_TRUE(store->CompactAll().ok());

  // Point reads.
  for (const auto& [key, value] : model) {
    auto r = store->Get(ReadOptions(), key);
    ASSERT_TRUE(r.ok()) << key;
    ASSERT_EQ(r.ValueOrDie(), value);
  }
  // Full scan order and contents.
  auto iter = store->NewIterator(ReadOptions());
  auto expected = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    ASSERT_EQ(iter->key().ToString(), expected->first);
    ASSERT_EQ(iter->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, EngineConfigTest,
    ::testing::Values(
        EngineConfig{512, 4, 10, 8 * 1024},     // tiny blocks, tiny buffer
        EngineConfig{4096, 16, 10, 64 * 1024},  // defaults-ish
        EngineConfig{4096, 1, 10, 64 * 1024},   // restart every entry
        EngineConfig{16384, 16, 0, 32 * 1024},  // no bloom filter
        EngineConfig{1024, 8, 2, 16 * 1024},    // weak bloom filter
        EngineConfig{4096, 16, 10, 8 << 20}));  // everything in memtable

}  // namespace
}  // namespace storage
}  // namespace iotdb
