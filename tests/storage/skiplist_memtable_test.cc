#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/arena.h"
#include "common/random.h"
#include "storage/comparator.h"
#include "storage/dbformat.h"
#include "storage/memtable.h"
#include "storage/skiplist.h"

namespace iotdb {
namespace storage {
namespace {

struct IntComparator {
  int operator()(const uint64_t& a, const uint64_t& b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

TEST(SkipListTest, EmptyList) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  EXPECT_FALSE(list.Contains(10));

  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
  iter.SeekToLast();
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, InsertLookupAndOrderedIteration) {
  const int kN = 2000;
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  std::set<uint64_t> keys;
  Random rng(1234);
  for (int i = 0; i < kN; ++i) {
    uint64_t key = rng.Uniform(10000);
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }

  for (uint64_t k = 0; k < 10000; ++k) {
    EXPECT_EQ(list.Contains(k), keys.count(k) > 0) << k;
  }

  // Forward iteration matches the sorted set.
  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  iter.SeekToFirst();
  for (uint64_t expected : keys) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), expected);
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());

  // Backward iteration.
  iter.SeekToLast();
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), *it);
    iter.Prev();
  }
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, SeekFindsLowerBound) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  for (uint64_t k = 0; k < 100; k += 10) list.Insert(k);

  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  iter.Seek(35);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 40u);
  iter.Seek(40);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 40u);
  iter.Seek(91);
  EXPECT_FALSE(iter.Valid());
}

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest()
      : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, AddThenGet) {
  mem_->Add(1, ValueType::kValue, "key", "value");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get("key", 10, &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "value");
  EXPECT_EQ(mem_->NumEntries(), 1u);
}

TEST_F(MemTableTest, GetHonoursSnapshotSequence) {
  mem_->Add(5, ValueType::kValue, "key", "v5");
  mem_->Add(9, ValueType::kValue, "key", "v9");

  std::string value;
  Status s;
  // Snapshot at 9 sees the newest.
  ASSERT_TRUE(mem_->Get("key", 9, &value, &s));
  EXPECT_EQ(value, "v9");
  // Snapshot at 7 sees the older version.
  ASSERT_TRUE(mem_->Get("key", 7, &value, &s));
  EXPECT_EQ(value, "v5");
  // Snapshot before the key existed sees nothing.
  EXPECT_FALSE(mem_->Get("key", 4, &value, &s));
}

TEST_F(MemTableTest, DeletionReturnsNotFound) {
  mem_->Add(1, ValueType::kValue, "key", "v");
  mem_->Add(2, ValueType::kDeletion, "key", "");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get("key", 10, &value, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(MemTableTest, MissingKeyNotFoundInTable) {
  mem_->Add(1, ValueType::kValue, "aaa", "v");
  std::string value;
  Status s;
  EXPECT_FALSE(mem_->Get("zzz", 10, &value, &s));
}

TEST_F(MemTableTest, IteratorYieldsInternalKeyOrder) {
  mem_->Add(3, ValueType::kValue, "b", "b3");
  mem_->Add(1, ValueType::kValue, "a", "a1");
  mem_->Add(2, ValueType::kValue, "c", "c2");
  mem_->Add(4, ValueType::kValue, "a", "a4");  // newer version of a

  auto iter = mem_->NewIterator();
  iter->SeekToFirst();
  // user key asc, then sequence desc: a@4, a@1, b@3, c@2.
  std::vector<std::pair<std::string, uint64_t>> got;
  while (iter->Valid()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    got.emplace_back(parsed.user_key.ToString(), parsed.sequence);
    iter->Next();
  }
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], (std::pair<std::string, uint64_t>("a", 4)));
  EXPECT_EQ(got[1], (std::pair<std::string, uint64_t>("a", 1)));
  EXPECT_EQ(got[2], (std::pair<std::string, uint64_t>("b", 3)));
  EXPECT_EQ(got[3], (std::pair<std::string, uint64_t>("c", 2)));
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; ++i) {
    mem_->Add(i + 1, ValueType::kValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  EXPECT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 1000);
}

TEST(InternalKeyTest, PackAndParse) {
  std::string encoded;
  AppendInternalKey(&encoded, "user_key", 12345, ValueType::kValue);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(Slice(encoded), &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "user_key");
  EXPECT_EQ(parsed.sequence, 12345u);
  EXPECT_EQ(parsed.type, ValueType::kValue);
  EXPECT_EQ(ExtractUserKey(Slice(encoded)).ToString(), "user_key");
}

TEST(InternalKeyTest, MalformedKeysRejected) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
  std::string bad_type(9, '\0');
  // The trailer is little-endian; its low byte (the type tag) is at the
  // start of the final 8 bytes.
  bad_type[1] = 0x7f;  // type byte > kValue
  EXPECT_FALSE(ParseInternalKey(Slice(bad_type), &parsed));
}

TEST(InternalKeyComparatorTest, OrdersUserAscSequenceDesc) {
  InternalKeyComparator icmp(BytewiseComparator());
  std::string a_new, a_old, b_new;
  AppendInternalKey(&a_new, "a", 10, ValueType::kValue);
  AppendInternalKey(&a_old, "a", 5, ValueType::kValue);
  AppendInternalKey(&b_new, "b", 100, ValueType::kValue);

  EXPECT_LT(icmp.Compare(a_new, a_old), 0);  // newer sorts first
  EXPECT_LT(icmp.Compare(a_old, b_new), 0);  // user key dominates
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
