// Bloom filter, block, SSTable, and cache tests.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "storage/block.h"
#include "storage/block_builder.h"
#include "storage/bloom.h"
#include "storage/cache.h"
#include "storage/comparator.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/table.h"
#include "storage/table_builder.h"

namespace iotdb {
namespace storage {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 5000; ++i) {
    builder.AddKey("key" + std::to_string(i));
  }
  std::string filter = builder.Finish();
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(BloomFilterMayMatch(filter, "key" + std::to_string(i)))
        << i;
  }
}

TEST(BloomTest, FalsePositiveRateIsReasonable) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; ++i) {
    builder.AddKey("present" + std::to_string(i));
  }
  std::string filter = builder.Finish();
  int false_positives = 0;
  const int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    if (BloomFilterMayMatch(filter, "absent" + std::to_string(i))) {
      false_positives++;
    }
  }
  // 10 bits/key targets ~1%; allow generous slack.
  EXPECT_LT(false_positives, kProbes / 25);
}

TEST(BloomTest, EmptyFilterMatchesEverything) {
  EXPECT_TRUE(BloomFilterMayMatch(Slice(), "anything"));
}

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(4, BytewiseComparator());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%05d", i);
    std::string value = "value" + std::to_string(i);
    builder.Add(key, value);
    model[key] = value;
  }
  Block block(builder.Finish().ToString());

  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), key);
    EXPECT_EQ(iter->value().ToString(), value);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST(BlockTest, SeekLandsOnLowerBound) {
  BlockBuilder builder(16, BytewiseComparator());
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    builder.Add(key, "v");
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());

  iter->Seek("k0013");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k0014");
  iter->Seek("k0014");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k0014");
  iter->Seek("k9999");
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, BackwardIteration) {
  BlockBuilder builder(3, BytewiseComparator());
  for (int i = 0; i < 30; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%03d", i);
    builder.Add(key, std::to_string(i));
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToLast();
  for (int i = 29; i >= 0; --i) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->value().ToString(), std::to_string(i));
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, MalformedBlockYieldsErrorIterator) {
  Block block(std::string("x"));  // shorter than the restart count
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsCorruption());
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.comparator = &icmp_;
    options_.block_size = 512;  // many blocks
  }

  // Builds a table of internal keys from user-key model entries.
  void BuildTable(const std::map<std::string, std::string>& model) {
    auto file = env_->NewWritableFile("/table.sst").MoveValueUnsafe();
    TableBuilder builder(options_, file.get());
    SequenceNumber seq = 1;
    for (const auto& [key, value] : model) {
      std::string ikey;
      AppendInternalKey(&ikey, key, seq++, ValueType::kValue);
      builder.Add(ikey, value);
    }
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE(file->Close().ok());
  }

  std::unique_ptr<Table> OpenTable(LruCache* cache = nullptr) {
    auto file = env_->NewRandomAccessFile("/table.sst").MoveValueUnsafe();
    auto result = Table::Open(options_, std::move(file), cache, 1);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).MoveValueUnsafe();
  }

  InternalKeyComparator icmp_{BytewiseComparator()};
  std::unique_ptr<Env> env_;
  Options options_;
};

TEST_F(TableTest, BuildThenScanAll) {
  std::map<std::string, std::string> model;
  Random rng(77);
  for (int i = 0; i < 3000; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "user%06d", i);
    model[key] = rng.RandomPrintableString(20);
  }
  BuildTable(model);
  auto table = OpenTable();

  auto iter = table->NewIterator(ReadOptions());
  iter->SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), key);
    EXPECT_EQ(iter->value().ToString(), value);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, SeekAcrossBlocks) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1000; ++i) {
    char key[24];
    snprintf(key, sizeof(key), "user%06d", i * 2);
    model[key] = "v" + std::to_string(i);
  }
  BuildTable(model);
  auto table = OpenTable();
  auto iter = table->NewIterator(ReadOptions());

  // Seek to a key between entries; internal key with max sequence seeks to
  // the first entry >= the user key.
  std::string target;
  AppendInternalKey(&target, "user000999", kMaxSequenceNumber,
                    kValueTypeForSeek);
  iter->Seek(target);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "user001000");
}

TEST_F(TableTest, InternalGetFindsAndRejects) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; ++i) {
    model["key" + std::to_string(i)] = "value" + std::to_string(i);
  }
  BuildTable(model);
  auto table = OpenTable();

  struct Hit {
    bool found = false;
    std::string value;
  };
  auto handler = [](void* arg, const Slice& k, const Slice& v) {
    auto* hit = static_cast<Hit*>(arg);
    ParsedInternalKey parsed;
    if (ParseInternalKey(k, &parsed) &&
        parsed.user_key == Slice("key250")) {
      hit->found = true;
      hit->value = v.ToString();
    }
  };

  Hit hit;
  std::string lookup = MakeLookupKey("key250", kMaxSequenceNumber);
  ASSERT_TRUE(
      table->InternalGet(ReadOptions(), lookup, &hit, handler).ok());
  EXPECT_TRUE(hit.found);
  EXPECT_EQ(hit.value, "value250");

  Hit miss;
  lookup = MakeLookupKey("key_that_is_not_there", kMaxSequenceNumber);
  ASSERT_TRUE(
      table->InternalGet(ReadOptions(), lookup, &miss, handler).ok());
  EXPECT_FALSE(miss.found);
}

TEST_F(TableTest, BlockCacheIsPopulatedAndHit) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    model["key" + std::to_string(100000 + i)] = std::string(50, 'v');
  }
  BuildTable(model);
  LruCache cache(1 << 20);
  auto table = OpenTable(&cache);

  auto scan = [&] {
    auto iter = table->NewIterator(ReadOptions());
    int n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    EXPECT_EQ(n, 2000);
  };
  scan();
  uint64_t misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0u);
  scan();
  EXPECT_EQ(cache.misses(), misses_after_first);  // second scan all hits
  EXPECT_GT(cache.hits(), 0u);
}

TEST_F(TableTest, CorruptedBlockDetected) {
  std::map<std::string, std::string> model{{"a", "1"}, {"b", "2"}};
  BuildTable(model);
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/table.sst", &contents).ok());
  contents[2] ^= 0x40;  // flip a bit in the first data block
  ASSERT_TRUE(env_->WriteStringToFile("/table.sst", contents).ok());

  auto file = env_->NewRandomAccessFile("/table.sst").MoveValueUnsafe();
  auto table_result = Table::Open(options_, std::move(file), nullptr, 1);
  if (table_result.ok()) {
    auto iter = table_result.ValueOrDie()->NewIterator(ReadOptions());
    iter->SeekToFirst();
    // Either the iterator surfaces corruption or yields nothing.
    if (iter->Valid()) {
      while (iter->Valid()) iter->Next();
    }
    EXPECT_FALSE(iter->status().ok());
  }
  // (If the corruption hit the index/footer, Open itself failed: also OK.)
}

TEST_F(TableTest, NotATableRejected) {
  ASSERT_TRUE(env_->WriteStringToFile("/table.sst",
                                      std::string(2000, 'j')).ok());
  auto file = env_->NewRandomAccessFile("/table.sst").MoveValueUnsafe();
  auto result = Table::Open(options_, std::move(file), nullptr, 1);
  EXPECT_FALSE(result.ok());
}

TEST(LruCacheTest, InsertLookupErase) {
  LruCache cache(1024, /*shard_bits=*/0);
  cache.Insert("a", std::make_shared<int>(1), 100);
  auto hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*std::static_pointer_cast<int>(hit), 1);
  EXPECT_EQ(cache.Lookup("missing"), nullptr);
  cache.Erase("a");
  EXPECT_EQ(cache.Lookup("a"), nullptr);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(300, /*shard_bits=*/0);  // single shard for determinism
  cache.Insert("a", std::make_shared<int>(1), 100);
  cache.Insert("b", std::make_shared<int>(2), 100);
  cache.Insert("c", std::make_shared<int>(3), 100);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // promote a
  cache.Insert("d", std::make_shared<int>(4), 100);  // evicts b
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);
}

TEST(LruCacheTest, ChargeAccounting) {
  LruCache cache(1000, 0);
  cache.Insert("x", std::make_shared<int>(0), 400);
  cache.Insert("y", std::make_shared<int>(0), 400);
  EXPECT_EQ(cache.TotalCharge(), 800u);
  cache.Insert("x", std::make_shared<int>(0), 100);  // replace
  EXPECT_EQ(cache.TotalCharge(), 500u);
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
