// The replication message plane in isolation: in-process mailbox delivery
// order, and the seeded FaultChannel decorator (drop / duplicate / delay /
// reorder / partition semantics).
#include "cluster/channel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "cluster/fault_channel.h"

namespace iotdb {
namespace cluster {
namespace {

/// Collects delivered request ids and lets tests block until a count (or a
/// quiet period) is reached. Handlers run on channel threads.
struct Recorder {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<uint64_t> ids;

  Channel::Handler AsHandler() {
    return [this](Message msg) {
      std::lock_guard<std::mutex> lock(mu);
      ids.push_back(msg.request_id);
      cv.notify_all();
    };
  }

  bool WaitForCount(size_t n, int timeout_ms = 2000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return ids.size() >= n; });
  }

  std::vector<uint64_t> Ids() {
    std::lock_guard<std::mutex> lock(mu);
    return ids;
  }
};

Message Msg(int dst, uint64_t id) {
  Message msg;
  msg.kind = MessageKind::kWriteRequest;
  msg.dst = dst;
  msg.src = kCoordinatorEndpoint;
  msg.request_id = id;
  return msg;
}

TEST(ChannelTest, DeliversFifoPerDestination) {
  auto channel = NewInProcessChannel();
  Recorder recorder;
  channel->RegisterEndpoint(0, recorder.AsHandler());
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(channel->Send(Msg(0, i)));
  }
  ASSERT_TRUE(recorder.WaitForCount(200));
  std::vector<uint64_t> ids = recorder.Ids();
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(ids[i], i) << "out of order at " << i;
  }
  channel->Shutdown();
}

TEST(ChannelTest, SendToUnregisteredEndpointFails) {
  auto channel = NewInProcessChannel();
  EXPECT_FALSE(channel->Send(Msg(7, 1)));
  channel->Shutdown();
  EXPECT_FALSE(channel->Send(Msg(0, 1)));
}

TEST(ChannelTest, UnregisterStopsDelivery) {
  auto channel = NewInProcessChannel();
  Recorder recorder;
  channel->RegisterEndpoint(0, recorder.AsHandler());
  ASSERT_TRUE(channel->Send(Msg(0, 1)));
  ASSERT_TRUE(recorder.WaitForCount(1));
  channel->UnregisterEndpoint(0);
  EXPECT_FALSE(channel->Send(Msg(0, 2)));
  channel->Shutdown();
}

TEST(FaultChannelTest, SameSeedSameFaultDecisions) {
  auto run = [](uint64_t seed) {
    FaultChannel channel(NewInProcessChannel(), seed);
    Recorder recorder;
    channel.RegisterEndpoint(0, recorder.AsHandler());
    channel.SetDropProbability(0.3);
    channel.SetDuplicateProbability(0.2);
    for (uint64_t i = 0; i < 500; ++i) channel.Send(Msg(0, i));
    NetFaultCounters counters = channel.GetCounters();
    channel.Shutdown();
    return counters;
  };
  NetFaultCounters a = run(11);
  NetFaultCounters b = run(11);
  NetFaultCounters c = run(12);
  EXPECT_GT(a.dropped, 0u);
  EXPECT_GT(a.duplicated, 0u);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  // A different seed takes different decisions (500 Bernoulli draws
  // colliding exactly is astronomically unlikely).
  EXPECT_TRUE(a.dropped != c.dropped || a.duplicated != c.duplicated);
}

TEST(FaultChannelTest, DropProbabilityOneDeliversNothing) {
  FaultChannel channel(NewInProcessChannel(), 1);
  Recorder recorder;
  channel.RegisterEndpoint(0, recorder.AsHandler());
  channel.SetDropProbability(1.0);
  for (uint64_t i = 0; i < 50; ++i) channel.Send(Msg(0, i));
  EXPECT_FALSE(recorder.WaitForCount(1, 100));
  NetFaultCounters counters = channel.GetCounters();
  EXPECT_EQ(counters.sent, 50u);
  EXPECT_EQ(counters.dropped, 50u);
  channel.Shutdown();
}

TEST(FaultChannelTest, DuplicateProbabilityOneDeliversTwice) {
  FaultChannel channel(NewInProcessChannel(), 1);
  Recorder recorder;
  channel.RegisterEndpoint(0, recorder.AsHandler());
  channel.SetDuplicateProbability(1.0);
  for (uint64_t i = 0; i < 20; ++i) channel.Send(Msg(0, i));
  ASSERT_TRUE(recorder.WaitForCount(40));
  std::vector<uint64_t> ids = recorder.Ids();
  std::multiset<uint64_t> seen(ids.begin(), ids.end());
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(seen.count(i), 2u) << "id " << i;
  }
  EXPECT_EQ(channel.GetCounters().duplicated, 20u);
  channel.Shutdown();
}

TEST(FaultChannelTest, EndpointDelayDefersDelivery) {
  FaultChannel channel(NewInProcessChannel(), 1);
  Recorder slow;
  Recorder fast;
  channel.RegisterEndpoint(0, slow.AsHandler());
  channel.RegisterEndpoint(1, fast.AsHandler());
  channel.SetEndpointDelay(0, 30'000, 30'000);  // 30 ms into endpoint 0
  channel.Send(Msg(0, 1));
  channel.Send(Msg(1, 2));
  // The undelayed endpoint hears its message while the delayed one still
  // waits.
  ASSERT_TRUE(fast.WaitForCount(1));
  EXPECT_TRUE(slow.Ids().empty());
  ASSERT_TRUE(slow.WaitForCount(1));  // ...and it arrives eventually
  EXPECT_EQ(channel.GetCounters().delayed, 1u);
  channel.Shutdown();
}

TEST(FaultChannelTest, ReorderShufflesButLosesNothing) {
  FaultChannel channel(NewInProcessChannel(), 99);
  Recorder recorder;
  channel.RegisterEndpoint(0, recorder.AsHandler());
  channel.SetReorderProbability(0.5, /*window_micros=*/3000);
  for (uint64_t i = 0; i < 200; ++i) channel.Send(Msg(0, i));
  ASSERT_TRUE(recorder.WaitForCount(200));
  std::vector<uint64_t> ids = recorder.Ids();
  std::set<uint64_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), 200u);  // at-most-once, nothing lost
  EXPECT_GT(channel.GetCounters().reordered, 0u);
  bool out_of_order = false;
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] < ids[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
  channel.Shutdown();
}

TEST(FaultChannelTest, IsolateBlocksBothDirectionsUntilHealed) {
  FaultChannel channel(NewInProcessChannel(), 1);
  Recorder at0;
  Recorder at1;
  channel.RegisterEndpoint(0, at0.AsHandler());
  channel.RegisterEndpoint(1, at1.AsHandler());

  channel.Isolate(1);
  EXPECT_FALSE(channel.Reachable(0, 1));
  EXPECT_FALSE(channel.Reachable(1, 0));
  EXPECT_TRUE(channel.Reachable(0, 0));
  Message to_isolated = Msg(1, 1);
  to_isolated.src = 0;
  channel.Send(to_isolated);
  Message from_isolated = Msg(0, 2);
  from_isolated.src = 1;
  channel.Send(from_isolated);
  EXPECT_FALSE(at1.WaitForCount(1, 100));
  EXPECT_TRUE(at0.Ids().empty());
  EXPECT_EQ(channel.GetCounters().partition_blocked, 2u);

  channel.Heal(1);
  EXPECT_TRUE(channel.Reachable(0, 1));
  channel.Send(Msg(1, 3));
  ASSERT_TRUE(at1.WaitForCount(1));
  channel.Shutdown();
}

TEST(FaultChannelTest, OneWayPartitionBlocksOnlyThatDirection) {
  FaultChannel channel(NewInProcessChannel(), 1);
  Recorder at0;
  Recorder at1;
  channel.RegisterEndpoint(0, at0.AsHandler());
  channel.RegisterEndpoint(1, at1.AsHandler());

  channel.PartitionOneWay(0, 1);
  EXPECT_FALSE(channel.Reachable(0, 1));
  EXPECT_TRUE(channel.Reachable(1, 0));
  Message forward = Msg(1, 1);
  forward.src = 0;
  channel.Send(forward);
  Message backward = Msg(0, 2);
  backward.src = 1;
  channel.Send(backward);
  ASSERT_TRUE(at0.WaitForCount(1));
  EXPECT_TRUE(at1.Ids().empty());

  channel.HealAll();
  channel.Send(forward);
  ASSERT_TRUE(at1.WaitForCount(1));
  channel.Shutdown();
}

TEST(FaultChannelTest, ShutdownWithDelayedMessagesInFlightIsSafe) {
  FaultChannel channel(NewInProcessChannel(), 1);
  Recorder recorder;
  channel.RegisterEndpoint(0, recorder.AsHandler());
  channel.SetDefaultDelay(50'000, 100'000);
  for (uint64_t i = 0; i < 50; ++i) channel.Send(Msg(0, i));
  // Shut down while every message still sits in the delay heap: nothing may
  // crash or deliver after shutdown.
  channel.Shutdown();
}

}  // namespace
}  // namespace cluster
}  // namespace iotdb
