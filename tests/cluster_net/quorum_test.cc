// Quorum replication under injected network faults: partitions, duplicate
// and reordered acks, straggler replicas, and the no-lost-acknowledged-write
// guarantee after partition heal + hint drain. The acceptance scenario of
// the availability work: a 1-of-3 replica partition over 30% of a run must
// keep every write quorum-met and lose nothing once hints drain.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"

namespace iotdb {
namespace cluster {
namespace {

ClusterOptions NetFaultyOptions(int nodes, uint64_t seed = 21) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.replication_factor = 3;
  options.storage_options.write_buffer_size = 64 * 1024;
  options.enable_net_fault_injection = true;
  options.net_fault_seed = seed;
  // Scaled-down timeouts so partition scenarios resolve in test time.
  options.straggler_timeout_micros = 20'000;
  options.write_timeout_micros = 500'000;
  options.hint_drain_interval_micros = 5'000;
  return options;
}

std::string Key(int i) { return "nk" + std::to_string(i); }

TEST(QuorumNetTest, PartitionedReplicaForThirtyPercentOfRunLosesNothing) {
  constexpr int kWrites = 3000;
  constexpr int kPartitionStart = kWrites * 35 / 100;
  constexpr int kPartitionEnd = kPartitionStart + kWrites * 30 / 100;

  auto cluster = Cluster::Start(NetFaultyOptions(3)).MoveValueUnsafe();
  FaultChannel* net = cluster->net_fault_channel();
  ASSERT_NE(net, nullptr);
  ASSERT_EQ(cluster->write_quorum(), 2);

  Client client(cluster.get());
  const int victim = 2;
  for (int i = 0; i < kWrites; ++i) {
    if (i == kPartitionStart) net->Isolate(victim);
    if (i == kPartitionEnd) net->Heal(victim);
    ASSERT_TRUE(client.Put(Key(i), "v" + std::to_string(i)).ok())
        << "write " << i << " failed";
  }
  net->HealAll();
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  // Every write succeeded, so every write met quorum: >= 99% (here 100%)
  // availability through a partition covering 30% of the run.
  AvailabilityStats avail = cluster->GetAvailabilityStats();
  EXPECT_GE(avail.writes_attempted, static_cast<uint64_t>(kWrites));
  EXPECT_GE(static_cast<double>(avail.writes_quorum_met),
            0.99 * static_cast<double>(avail.writes_attempted));
  EXPECT_EQ(avail.writes_attempted,
            avail.writes_quorum_met + avail.writes_unavailable);
  // The partitioned replica's misses were absorbed as straggler hints.
  EXPECT_GT(avail.straggler_hinted_kvps, 0u);
  EXPECT_GT(net->GetCounters().partition_blocked, 0u);

  // Zero acknowledged writes lost: full read-back through the client AND
  // directly on every node's store (rf == nodes, so each node holds all).
  for (int i = 0; i < kWrites; ++i) {
    auto r = client.Get(Key(i));
    ASSERT_TRUE(r.ok()) << Key(i) << ": " << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie(), "v" + std::to_string(i));
  }
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    for (int i = 0; i < kWrites; ++i) {
      auto r = cluster->node(n)->store()->Get(storage::ReadOptions(),
                                              Key(i));
      ASSERT_TRUE(r.ok()) << "node " << n << " misses " << Key(i);
    }
  }
}

TEST(QuorumNetTest, DuplicateAckDeliveryIsIdempotent) {
  auto cluster = Cluster::Start(NetFaultyOptions(3)).MoveValueUnsafe();
  cluster->net_fault_channel()->SetDuplicateProbability(1.0);

  Client client(cluster.get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  // Every message was duplicated: requests re-apply the same rows (benign)
  // and acks hit already-resolved slots, which are counted and dropped.
  AvailabilityStats avail = cluster->GetAvailabilityStats();
  EXPECT_GT(avail.duplicate_acks_ignored, 0u);
  EXPECT_EQ(avail.writes_attempted,
            avail.writes_quorum_met + avail.writes_unavailable);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(client.Get(Key(i)).ValueOrDie(), "v");
  }
}

TEST(QuorumNetTest, ReorderedAcksResolvePipelinedBatches) {
  auto cluster = Cluster::Start(NetFaultyOptions(4)).MoveValueUnsafe();
  cluster->net_fault_channel()->SetReorderProbability(
      1.0, /*window_micros=*/2000);

  // PutBatch pipelines one quorum write per primary shard group: all fan
  // out before any is awaited, so reordered acks interleave across them.
  Client client(cluster.get());
  std::vector<std::pair<std::string, std::string>> kvps;
  for (int i = 0; i < 400; ++i) {
    kvps.emplace_back(Key(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(client.PutBatch(kvps).ok());
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  EXPECT_GT(cluster->net_fault_channel()->GetCounters().reordered, 0u);
  AvailabilityStats avail = cluster->GetAvailabilityStats();
  EXPECT_EQ(avail.writes_attempted,
            avail.writes_quorum_met + avail.writes_unavailable);
  EXPECT_EQ(avail.writes_unavailable, 0u);
  for (int i = 0; i < 400; i += 37) {
    EXPECT_EQ(client.Get(Key(i)).ValueOrDie(), "v" + std::to_string(i));
  }
}

TEST(QuorumNetTest, PartitionHealDrainsHintsToIsolatedReplica) {
  auto cluster = Cluster::Start(NetFaultyOptions(3)).MoveValueUnsafe();
  FaultChannel* net = cluster->net_fault_channel();
  Client client(cluster.get());

  net->Isolate(1);
  for (int i = 0; i < 100; ++i) {
    // 2-of-3 quorum met by the reachable replicas.
    ASSERT_TRUE(client.Put(Key(i), "v").ok()) << "write " << i;
  }
  net->Heal(1);
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  AvailabilityStats avail = cluster->GetAvailabilityStats();
  EXPECT_EQ(avail.writes_unavailable, 0u);
  EXPECT_GT(avail.straggler_hinted_kvps, 0u);
  // The formerly-partitioned replica converged via hint replay.
  for (int i = 0; i < 100; ++i) {
    auto r = cluster->node(1)->store()->Get(storage::ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << "node 1 misses " << Key(i);
  }
}

TEST(QuorumNetTest, SlowReplicaIsHintedPastStragglerWindow) {
  auto cluster = Cluster::Start(NetFaultyOptions(3)).MoveValueUnsafe();
  // Every message into node 2 takes 60 ms — three times the straggler
  // window — so quorum completes on the fast replicas and the laggard's
  // rows are swept into hints.
  cluster->net_fault_channel()->SetEndpointDelay(2, 60'000, 60'000);

  Client client(cluster.get());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.Put(Key(i), "v").ok());
  }
  cluster->net_fault_channel()->SetEndpointDelay(2, 0, 0);
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  AvailabilityStats avail = cluster->GetAvailabilityStats();
  EXPECT_EQ(avail.writes_unavailable, 0u);
  EXPECT_GT(avail.straggler_hinted_kvps, 0u);
  for (int i = 0; i < 30; ++i) {
    auto r = cluster->node(2)->store()->Get(storage::ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << "node 2 misses " << Key(i);
  }
}

TEST(QuorumNetTest, AllReplicasPartitionedFailsFastWithUnavailable) {
  ClusterOptions options = NetFaultyOptions(3);
  options.write_timeout_micros = 100'000;  // fail fast for the test
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  FaultChannel* net = cluster->net_fault_channel();
  for (int n = 0; n < 3; ++n) net->Isolate(n);

  Client client(cluster.get());
  Status s = client.Put("k", "v");
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();

  AvailabilityStats avail = cluster->GetAvailabilityStats();
  EXPECT_EQ(avail.writes_unavailable, 1u);
  EXPECT_EQ(avail.deadline_exceeded, 1u);
  EXPECT_EQ(avail.writes_attempted,
            avail.writes_quorum_met + avail.writes_unavailable);

  // Healing restores availability.
  net->HealAll();
  EXPECT_TRUE(client.Put("k2", "v").ok());
}

TEST(QuorumNetTest, ReplicaCrashMidFanoutHintsOrFails) {
  // Satellite regression: a replica failing after the primary acked must
  // never yield a successful write whose rows silently miss that replica —
  // each acknowledged write either reached it or left a hint that replays.
  ClusterOptions options = NetFaultyOptions(3);
  options.enable_fault_injection = true;  // CrashNode loses unsynced state
  options.fault_seed = 3;
  auto cluster = Cluster::Start(options).MoveValueUnsafe();

  constexpr int kWrites = 400;
  std::vector<bool> acked(kWrites, false);
  std::thread writer([&cluster, &acked] {
    Client client(cluster.get());
    for (int i = 0; i < kWrites; ++i) {
      acked[i] = client.Put(Key(i), "v").ok();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(cluster->CrashNode(1).ok());
  writer.join();

  ASSERT_TRUE(cluster->RestartNode(1).ok());
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  // Every acknowledged write must be present on the once-crashed replica
  // (restart replays hints / re-copies shards; rf == nodes, so node 1
  // replicates every key).
  int acked_count = 0;
  for (int i = 0; i < kWrites; ++i) {
    if (!acked[i]) continue;
    acked_count++;
    auto r = cluster->node(1)->store()->Get(storage::ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << "acked write " << Key(i)
                        << " missing from crashed replica: "
                        << r.status().ToString();
  }
  EXPECT_GT(acked_count, 0);
}

}  // namespace
}  // namespace cluster
}  // namespace iotdb
