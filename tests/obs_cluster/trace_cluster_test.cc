// End-to-end causal tracing across the real stack: one replicated write
// must export as a single parent/child-linked flow spanning the driver
// thread, the shard group-commit leader, the channel mailbox, and the
// replica apply threads — and the per-op stage attribution must charge an
// injected slow-replica delay to the quorum-wait stage. Runs in the `obs`
// ctest label and again under full TSan via the obs_tsan_suite tier.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/fault_channel.h"
#include "common/clock.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/slowops.h"
#include "obs/trace.h"

namespace iotdb {
namespace cluster {
namespace {

std::vector<std::pair<std::string, std::string>> Rows(int n) {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.emplace_back("tk" + std::to_string(i), "v" + std::to_string(i));
  }
  return rows;
}

TEST(TraceClusterTest, ReplicatedWriteExportsOneLinkedCrossThreadFlow) {
  obs::SetEnabled(true);
  ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 3;
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  Client client(cluster.get());

  obs::TraceBuffer::StartTracing(8192);
  // The driver's op entry: mint the root context, install it, write.
  obs::TraceContext op_ctx = obs::TraceContext::Mint();
  uint64_t t0 = Clock::Real()->NowMicros();
  {
    obs::ScopedTraceContext ctx_scope(op_ctx);
    ASSERT_TRUE(client.PutBatch(Rows(10)).ok());
  }
  obs::TraceBuffer::Record("test.driver.op", t0,
                           Clock::Real()->NowMicros() - t0, op_ctx);
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());
  obs::TraceBuffer::StopTracing();

  std::map<uint64_t, obs::TraceEvent> by_span;
  std::map<std::string, int> name_counts;
  for (const obs::TraceEvent& event : obs::TraceBuffer::Snapshot()) {
    if (event.trace_id != op_ctx.trace_id) continue;
    by_span[event.span_id] = event;
    name_counts[event.name]++;
  }
  // The op's flow crossed every layer: driver anchor, client fan-out,
  // quorum ack, one apply per replica, and the shard group commit inside
  // the apply.
  EXPECT_EQ(name_counts["test.driver.op"], 1);
  EXPECT_GE(name_counts["cluster.fanout"], 1);
  EXPECT_GE(name_counts["cluster.quorum_ack"], 1);
  EXPECT_GE(name_counts["cluster.replica_apply"], 2);  // >= quorum acks
  EXPECT_GE(name_counts["storage.wal.group_commit"] +
                name_counts["storage.group_commit.join"],
            1);

  // Every replica apply must chain back to the driver's root span through
  // recorded parents: apply -> quorum_ack -> fanout -> driver op.
  int applies_checked = 0;
  for (const auto& [span_id, event] : by_span) {
    if (std::string(event.name) != "cluster.replica_apply") continue;
    applies_checked++;
    std::vector<std::string> chain;
    std::map<uint64_t, bool> visited;
    obs::TraceEvent cur = event;
    while (cur.parent_id != 0 && !visited[cur.parent_id]) {
      visited[cur.parent_id] = true;
      auto it = by_span.find(cur.parent_id);
      ASSERT_NE(it, by_span.end())
          << cur.name << " has unrecorded parent " << cur.parent_id;
      cur = it->second;
      chain.push_back(cur.name);
    }
    ASSERT_GE(chain.size(), 3u);
    EXPECT_EQ(chain[0], "cluster.quorum_ack");
    EXPECT_EQ(chain[1], "cluster.fanout");
    EXPECT_EQ(chain.back(), "test.driver.op");
    // The hop crossed the channel: the apply ran on a mailbox thread, not
    // the driver thread that recorded the root.
    EXPECT_NE(event.tid, by_span.at(op_ctx.span_id).tid);
  }
  EXPECT_GE(applies_checked, 2);

  // The group-commit span links into an apply (the replica thread runs the
  // storage write path under the apply's context).
  int commits_linked = 0;
  for (const auto& [span_id, event] : by_span) {
    std::string name = event.name;
    if (name != "storage.wal.group_commit" &&
        name != "storage.group_commit.join") {
      continue;
    }
    auto it = by_span.find(event.parent_id);
    ASSERT_NE(it, by_span.end());
    EXPECT_STREQ(it->second.name, "cluster.replica_apply");
    commits_linked++;
  }
  EXPECT_GE(commits_linked, 1);
}

TEST(TraceClusterTest, QuorumWaitStageAbsorbsSlowReplicaDelay) {
  constexpr uint64_t kDelayMicros = 50'000;
  obs::SetEnabled(true);
  ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 3;
  options.enable_net_fault_injection = true;
  options.net_fault_seed = 7;
  auto cluster = Cluster::Start(options).MoveValueUnsafe();
  FaultChannel* net = cluster->net_fault_channel();
  ASSERT_NE(net, nullptr);
  ASSERT_EQ(cluster->write_quorum(), 2);
  // Two of the three replicas are slow, so the second (quorum-deciding)
  // ack always rides a delayed delivery.
  net->SetEndpointDelay(1, kDelayMicros, kDelayMicros);
  net->SetEndpointDelay(2, kDelayMicros, kDelayMicros);

  uint64_t quorum_hist_before =
      obs::MetricsRegistry::Global()
          .GetHistogram("attrib.quorum_wait_micros")
          ->TakeSnapshot()
          .count;
  obs::SlowOpRecorder::StartRun(8);
  Client client(cluster.get());
  {
    obs::ScopedOpBreadcrumb breadcrumb("test.driver.op", 1, 10);
    ASSERT_TRUE(breadcrumb.active());
    uint64_t t0 = Clock::Real()->NowMicros();
    ASSERT_TRUE(client.PutBatch(Rows(10)).ok());
    breadcrumb.Complete(t0, Clock::Real()->NowMicros() - t0);
  }
  std::vector<obs::SlowOpRecorder::Record> records =
      obs::SlowOpRecorder::TakeSnapshot();
  obs::SlowOpRecorder::StopRun();
  net->HealAll();
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  // The recorder also kept the per-replica apply breadcrumbs; pick the
  // driver-level op.
  const obs::OpBreadcrumb* driver_bc = nullptr;
  for (const auto& record : records) {
    if (std::string(record.breadcrumb.op) == "test.driver.op") {
      driver_bc = &record.breadcrumb;
      break;
    }
  }
  ASSERT_NE(driver_bc, nullptr);
  const obs::OpBreadcrumb& bc = *driver_bc;
  const uint64_t quorum_wait =
      bc.stage_micros[static_cast<int>(obs::Stage::kQuorumWait)];
  // The injected delay lands in the quorum-wait stage, and the stage
  // breakdown stays consistent with the op's end-to-end latency.
  EXPECT_GE(quorum_wait, kDelayMicros * 9 / 10);
  EXPECT_GE(bc.total_micros, quorum_wait);
  EXPECT_GE(quorum_wait * 2, bc.total_micros);  // it dominates the op
  EXPECT_LE(bc.StageSum(), bc.total_micros);

  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetHistogram("attrib.quorum_wait_micros")
                ->TakeSnapshot()
                .count,
            quorum_hist_before + 1);
}

}  // namespace
}  // namespace cluster
}  // namespace iotdb
