// Checks, metrics, pricing, report, driver instance, and the full
// benchmark driver running end-to-end against the real in-process cluster.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "iot/benchmark_driver.h"
#include "iot/checks.h"
#include "iot/metrics.h"
#include "iot/pricing.h"
#include "iot/report.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "ycsb/bindings.h"

namespace iotdb {
namespace iot {
namespace {

std::unique_ptr<cluster::Cluster> MakeSut(int nodes) {
  cluster::ClusterOptions options;
  options.num_nodes = nodes;
  options.replication_factor = 3;
  options.shard_key_fn = TpcxIotShardKey;
  options.storage_options.write_buffer_size = 256 * 1024;
  auto result = cluster::Cluster::Start(options);
  EXPECT_TRUE(result.ok());
  return std::move(result).MoveValueUnsafe();
}

TEST(FileCheckTest, PassesOnMatchingChecksums) {
  auto env = storage::NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("/kit/workload.properties",
                                     "recordcount=1000\n").ok());
  std::string digest =
      Md5OfFile(env.get(), "/kit/workload.properties").ValueOrDie();
  CheckResult result = FileCheck(
      env.get(), {{"/kit/workload.properties", digest}});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(FileCheckTest, FailsOnTamperedFile) {
  auto env = storage::NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("/kit/f", "original").ok());
  std::string digest = Md5OfFile(env.get(), "/kit/f").ValueOrDie();
  ASSERT_TRUE(env->WriteStringToFile("/kit/f", "tampered!").ok());
  CheckResult result = FileCheck(env.get(), {{"/kit/f", digest}});
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.detail.find("checksum mismatch"), std::string::npos);
}

TEST(FileCheckTest, FailsOnMissingFile) {
  auto env = storage::NewMemEnv();
  CheckResult result = FileCheck(env.get(), {{"/kit/missing", "00"}});
  EXPECT_FALSE(result.passed);
}

TEST(ReplicationCheckTest, PassesOnThreeWayCluster) {
  auto sut = MakeSut(4);
  CheckResult result = ReplicationCheck(sut.get());
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(ReplicationCheckTest, FailsWhenConfiguredBelowThree) {
  cluster::ClusterOptions options;
  options.num_nodes = 4;
  options.replication_factor = 1;
  auto sut = cluster::Cluster::Start(options).MoveValueUnsafe();
  CheckResult result = ReplicationCheck(sut.get());
  EXPECT_FALSE(result.passed);
}

TEST(DataCheckTest, EnforcesAllFloors) {
  DataCheckInput input;
  input.expected_kvps = 1000;
  input.ingested_kvps = 1000;
  input.elapsed_seconds = 2000;
  input.substations = 1;
  input.avg_rows_per_query = 500;
  input.min_run_seconds = 1800;
  input.min_per_sensor_rate = 0.001;
  EXPECT_TRUE(DataCheck(input).passed);

  DataCheckInput missing = input;
  missing.ingested_kvps = 999;
  EXPECT_FALSE(DataCheck(missing).passed);

  DataCheckInput short_run = input;
  short_run.elapsed_seconds = 1799;
  EXPECT_FALSE(DataCheck(short_run).passed);

  DataCheckInput slow = input;
  slow.min_per_sensor_rate = 20;  // 1000 kvps over 2000s is way below
  EXPECT_FALSE(DataCheck(slow).passed);

  DataCheckInput thin_queries = input;
  thin_queries.avg_rows_per_query = 100;
  EXPECT_FALSE(DataCheck(thin_queries).passed);
  thin_queries.enforce_query_rows = false;
  EXPECT_TRUE(DataCheck(thin_queries).passed);
}

TEST(MetricsTest, IoTpsIsEquation4) {
  RunMetrics run;
  run.kvps_ingested = 1000000;
  run.ts_start_micros = 0;
  run.ts_end_micros = 100ull * 1000000;  // 100 s
  EXPECT_DOUBLE_EQ(run.IoTps(), 10000.0);
  EXPECT_DOUBLE_EQ(run.ElapsedSeconds(), 100.0);
}

TEST(MetricsTest, ReversedWindowIsAnErrorNotAZeroRate) {
  RunMetrics run;
  run.kvps_ingested = 1000;
  run.ts_start_micros = 5000000;
  run.ts_end_micros = 1000000;  // clock went backwards
  EXPECT_FALSE(run.HasValidWindow());
  Status s = run.Validate();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("invalid measurement window"),
            std::string::npos);
  // Elapsed must come out negative (not a huge unsigned wrap) so IoTps
  // cannot silently report a tiny-but-positive rate.
  EXPECT_LT(run.ElapsedSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(run.IoTps(), 0.0);

  RunMetrics empty;
  empty.ts_start_micros = empty.ts_end_micros = 7;
  EXPECT_FALSE(empty.HasValidWindow());
  EXPECT_FALSE(empty.Validate().ok());

  RunMetrics good;
  good.ts_start_micros = 0;
  good.ts_end_micros = 1;
  EXPECT_TRUE(good.HasValidWindow());
  EXPECT_TRUE(good.Validate().ok());
}

TEST(MetricsTest, PerformanceRunIsTheSlowerOne) {
  RunMetrics fast, slow;
  fast.kvps_ingested = slow.kvps_ingested = 1000;
  fast.ts_start_micros = slow.ts_start_micros = 0;
  fast.ts_end_micros = 1000000;
  slow.ts_end_micros = 2000000;
  EXPECT_EQ(PerformanceRunIndex(fast, slow), 1);
  EXPECT_EQ(PerformanceRunIndex(slow, fast), 0);
  // With different kvp counts, the lower count wins per spec.
  RunMetrics fewer = fast;
  fewer.kvps_ingested = 500;
  EXPECT_EQ(PerformanceRunIndex(fewer, slow), 0);
}

TEST(MetricsTest, PricePerformanceIsEquation5) {
  RunMetrics run;
  run.kvps_ingested = 100000;
  run.ts_start_micros = 0;
  run.ts_end_micros = 10ull * 1000000;
  EXPECT_DOUBLE_EQ(run.IoTps(), 10000.0);
  EXPECT_DOUBLE_EQ(PricePerformance(50000.0, run), 5.0);
}

TEST(PricingTest, TotalsAndAvailability) {
  PricedConfiguration config =
      PricedConfiguration::ReferenceGatewayConfig(8);
  EXPECT_GT(config.TotalCost(), 0.0);
  EXPECT_GT(config.CostInCategory(PriceCategory::kHardware), 0.0);
  EXPECT_GT(config.CostInCategory(PriceCategory::kMaintenance), 0.0);
  EXPECT_EQ(config.SystemAvailabilityDate(), "2017-05-01");
  std::string problem;
  EXPECT_TRUE(config.Validate(&problem)) << problem;
  // More nodes cost more.
  EXPECT_GT(config.TotalCost(),
            PricedConfiguration::ReferenceGatewayConfig(2).TotalCost());
}

TEST(PricingTest, ValidationCatchesRuleViolations) {
  std::string problem;
  PricedConfiguration empty;
  EXPECT_FALSE(empty.Validate(&problem));

  PricedConfiguration no_maintenance;
  no_maintenance.Add({"server", "P/N", PriceCategory::kHardware, 100.0, 1,
                      0, "2020-01-01"});
  EXPECT_FALSE(no_maintenance.Validate(&problem));
  EXPECT_NE(problem.find("maintenance"), std::string::npos);

  PricedConfiguration bad_discount;
  bad_discount.Add({"server", "P/N", PriceCategory::kHardware, 100.0, 1,
                    1.5, "2020-01-01"});
  EXPECT_FALSE(bad_discount.Validate(&problem));
}

TEST(PricingTest, DiscountApplies) {
  LineItem item{"x", "p", PriceCategory::kHardware, 100.0, 2, 0.25, "d"};
  EXPECT_DOUBLE_EQ(item.ExtendedPrice(), 150.0);
}

TEST(DriverInstanceTest, IngestsShareAndIssuesQueries) {
  auto sut = MakeSut(2);
  ycsb::ClusterDB db(sut.get());
  DriverOptions options;
  options.substation_key = "sub0001";
  options.total_kvps = 25000;  // 2 query batches worth
  options.batch_size = 500;
  DriverInstance driver(options, &db);
  DriverResult result = driver.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.kvps_ingested, 25000u);
  // 25000 readings -> 2 * 5 queries.
  EXPECT_EQ(result.queries_executed, 10u);
  EXPECT_EQ(result.query_latency_micros.count(), 10u);
  EXPECT_GT(result.ElapsedSeconds(), 0.0);
  // Every ingested kvp is on the cluster, 2 copies (2 nodes).
  EXPECT_EQ(sut->GetAggregateStats().primary_writes, 25000u);
}

TEST(DriverInstanceTest, AbortStopsEarly) {
  auto sut = MakeSut(2);
  ycsb::ClusterDB db(sut.get());
  DriverOptions options;
  options.substation_key = "sub0001";
  options.total_kvps = 1000000;
  std::atomic<bool> abort{true};
  DriverInstance driver(options, &db);
  DriverResult result = driver.Run(&abort);
  EXPECT_TRUE(result.status.IsAborted());
  EXPECT_LT(result.kvps_ingested, 1000000u);
}

TEST(BenchmarkDriverTest, FullRunEndToEnd) {
  auto sut = MakeSut(3);
  BenchmarkConfig config;
  config.num_driver_instances = 2;
  config.total_kvps = 30000;
  config.batch_size = 500;
  config.min_run_seconds = 0;      // scaled-down floors
  config.min_per_sensor_rate = 0;  // in-process run, no rate floor
  config.skip_warmup = false;

  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.file_check.passed);
  EXPECT_TRUE(result.replication_check.passed);
  EXPECT_TRUE(result.valid) << result.invalid_reason;
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(result.iterations[i].measured.metrics.kvps_ingested, 30000u);
    EXPECT_EQ(result.iterations[i].warmup.metrics.kvps_ingested, 30000u);
    EXPECT_TRUE(result.iterations[i].data_check.passed);
    EXPECT_EQ(result.iterations[i].measured.TotalQueries(), 10u);
  }
  EXPECT_GT(result.IoTps(), 0.0);
  // The SUT is purged after the run.
  EXPECT_EQ(sut->GetAggregateStats().primary_writes, 0u);
}

TEST(BenchmarkDriverTest, TimelineIngestSumMatchesRunTotal) {
  auto sut = MakeSut(3);
  BenchmarkConfig config;
  config.num_driver_instances = 2;
  config.total_kvps = 30000;
  config.batch_size = 500;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.timeline_cadence_micros = 5'000;  // several intervals per run

  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  for (int i = 0; i < 2; ++i) {
    const obs::Timeline& timeline = result.iterations[i].measured.timeline;
    ASSERT_FALSE(timeline.empty()) << "iteration " << i;
    // Per-interval deltas telescope and the sampler flushes its tail at
    // Stop(), so the interval sum equals the run total exactly — the same
    // invariant the bench's --timeline-out cross-check prints.
    EXPECT_EQ(timeline.CounterTotal("driver.ingest.kvps"),
              result.iterations[i].measured.metrics.kvps_ingested)
        << "iteration " << i;
    EXPECT_EQ(timeline.cadence_micros, 5'000u);
  }

  // The FDR gains a Run timeline section when a timeline was collected.
  PricedConfiguration pricing =
      PricedConfiguration::ReferenceGatewayConfig(3);
  SutDescription sut_desc;
  sut_desc.nodes = 3;
  std::string fdr = FullDisclosureReport(result, pricing, sut_desc);
  EXPECT_NE(fdr.find("Run timeline"), std::string::npos);
  EXPECT_NE(fdr.find("steady-state CoV"), std::string::npos);
}

TEST(BenchmarkDriverTest, FaultScheduleKillsAndRecoversANode) {
  cluster::ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 3;
  options.shard_key_fn = TpcxIotShardKey;
  options.storage_options.write_buffer_size = 256 * 1024;
  options.enable_fault_injection = true;
  options.fault_seed = 11;
  auto sut = cluster::Cluster::Start(options).MoveValueUnsafe();

  BenchmarkConfig config;
  config.num_driver_instances = 2;
  config.total_kvps = 20000;
  config.batch_size = 200;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.fault_kill_node = 1;
  config.fault_at_ops = 2000;
  config.fault_restart_after_ops = 5000;

  BenchmarkDriver driver(config, sut.get());
  WorkloadExecution execution = driver.ExecuteWorkload();
  ASSERT_TRUE(execution.status.ok()) << execution.status.ToString();
  EXPECT_EQ(execution.metrics.kvps_ingested, 20000u);
  EXPECT_EQ(execution.faults.node_crashes, 1u);
  EXPECT_EQ(execution.faults.node_restarts, 1u);

  // The victim rejoined and converged: with rf == nodes every node holds
  // every key, so the restarted node's shard data equals its replicas'.
  EXPECT_FALSE(sut->node(1)->is_down());
  ASSERT_TRUE(sut->FlushAll().ok());
  uint64_t restarted = sut->node(1)->store()->CountKeysSlow();
  uint64_t replica = sut->node(0)->store()->CountKeysSlow();
  EXPECT_EQ(restarted, replica);
  EXPECT_GT(restarted, 0u);
}

TEST(BenchmarkDriverTest, CorruptionScheduleDetectsAndRepairs) {
  cluster::ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 3;
  options.shard_key_fn = TpcxIotShardKey;
  options.storage_options.write_buffer_size = 64 * 1024;
  options.enable_fault_injection = true;
  options.fault_seed = 33;
  auto sut = cluster::Cluster::Start(options).MoveValueUnsafe();

  BenchmarkConfig config;
  config.num_driver_instances = 2;
  config.total_kvps = 20000;
  config.batch_size = 200;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.fault_corrupt_node = 1;
  config.fault_corrupt_at_ops = 4000;
  config.fault_corrupt_bits = 16;

  BenchmarkDriver driver(config, sut.get());
  WorkloadExecution execution = driver.ExecuteWorkload();
  ASSERT_TRUE(execution.status.ok()) << execution.status.ToString();
  EXPECT_EQ(execution.metrics.kvps_ingested, 20000u);

  // Injected damage was detected, quarantined, and healed during the run:
  // the FDR's "detected == repaired" invariant.
  EXPECT_EQ(execution.integrity.files_corrupted, 1u);
  EXPECT_EQ(execution.integrity.bits_flipped, 16u);
  EXPECT_EQ(execution.integrity.files_quarantined, 1u);
  EXPECT_EQ(execution.integrity.shard_recopies, 1u);
  EXPECT_TRUE(execution.integrity.Any());

  // The repaired node converged with its replicas (rf == nodes, so every
  // node holds every key) and nothing is left pending.
  EXPECT_TRUE(sut->PendingRepairNodes().empty());
  EXPECT_FALSE(sut->node(1)->under_repair());
  ASSERT_TRUE(sut->FlushAll().ok());
  EXPECT_EQ(sut->node(1)->store()->CountKeysSlow(),
            sut->node(0)->store()->CountKeysSlow());
}

TEST(BenchmarkDriverTest, NetFaultScheduleDegradesAndConverges) {
  cluster::ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 3;
  options.shard_key_fn = TpcxIotShardKey;
  options.storage_options.write_buffer_size = 256 * 1024;
  options.enable_net_fault_injection = true;
  options.net_fault_seed = 17;
  options.straggler_timeout_micros = 20'000;
  auto sut = cluster::Cluster::Start(options).MoveValueUnsafe();

  BenchmarkConfig config;
  config.num_driver_instances = 2;
  config.total_kvps = 20000;
  config.batch_size = 200;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.fault_net_partition_node = 1;
  config.fault_net_partition_at_ops = 5000;
  config.fault_net_heal_after_ops = 5000;

  BenchmarkDriver driver(config, sut.get());
  WorkloadExecution execution = driver.ExecuteWorkload();
  ASSERT_TRUE(execution.status.ok()) << execution.status.ToString();
  EXPECT_EQ(execution.metrics.kvps_ingested, 20000u);

  // The partition fired, writes kept meeting quorum on the reachable
  // replicas, and the accounting invariant holds exactly.
  EXPECT_GT(execution.net_faults.partition_blocked, 0u);
  EXPECT_GT(execution.availability.writes_attempted, 0u);
  EXPECT_EQ(execution.availability.writes_attempted,
            execution.availability.writes_quorum_met +
                execution.availability.writes_unavailable);
  EXPECT_GE(static_cast<double>(execution.availability.writes_quorum_met),
            0.99 * static_cast<double>(
                       execution.availability.writes_attempted));
  EXPECT_GT(execution.availability.straggler_hinted_kvps, 0u);

  // Heal + hint drain ran inside the execution: the once-partitioned node
  // converged with its replicas (rf == nodes, every node holds every key).
  ASSERT_TRUE(sut->FlushAll().ok());
  EXPECT_EQ(sut->node(1)->store()->CountKeysSlow(),
            sut->node(0)->store()->CountKeysSlow());

  // And the FDR gains the Availability section with its PASS invariant.
  BenchmarkResult result;
  result.iterations[0].measured = std::move(execution);
  PricedConfiguration pricing =
      PricedConfiguration::ReferenceGatewayConfig(3);
  SutDescription sut_desc;
  sut_desc.nodes = 3;
  std::string fdr = FullDisclosureReport(result, pricing, sut_desc);
  EXPECT_NE(fdr.find("--- Availability ---"), std::string::npos);
  EXPECT_NE(fdr.find("[PASS] write accounting"), std::string::npos);
}

TEST(BenchmarkDriverTest, RejectsNetFaultScheduleWithoutNetChannel) {
  auto sut = MakeSut(3);  // no net fault injection enabled
  BenchmarkConfig config;
  config.num_driver_instances = 1;
  config.total_kvps = 1000;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.fault_net_partition_node = 1;
  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  EXPECT_TRUE(result.status.IsInvalidArgument()) << result.status.ToString();
  EXPECT_EQ(result.invalid_reason, "invalid fault schedule");
}

TEST(BenchmarkDriverTest, RejectsCorruptionScheduleWithoutFaultEnv) {
  auto sut = MakeSut(3);  // no fault injection enabled
  BenchmarkConfig config;
  config.num_driver_instances = 1;
  config.total_kvps = 1000;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.fault_corrupt_node = 0;
  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  EXPECT_TRUE(result.status.IsInvalidArgument()) << result.status.ToString();
  EXPECT_EQ(result.invalid_reason, "invalid fault schedule");
}

TEST(BenchmarkDriverTest, RejectsFaultScheduleForMissingNode) {
  auto sut = MakeSut(3);
  BenchmarkConfig config;
  config.num_driver_instances = 1;
  config.total_kvps = 1000;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.fault_kill_node = 99;  // the SUT has nodes 0..2
  config.fault_at_ops = 100;
  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  EXPECT_TRUE(result.status.IsInvalidArgument()) << result.status.ToString();
  EXPECT_EQ(result.invalid_reason, "invalid fault schedule");
}

TEST(BenchmarkDriverTest, AbortsOnFailedFileCheck) {
  auto sut = MakeSut(3);
  auto kit_env = storage::NewMemEnv();
  ASSERT_TRUE(kit_env->WriteStringToFile("/kit/f", "contents").ok());
  BenchmarkConfig config;
  config.num_driver_instances = 1;
  config.total_kvps = 100;
  config.kit_files = {{"/kit/f", "wrongdigest"}};
  config.kit_env = kit_env.get();
  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  EXPECT_TRUE(result.status.IsFailedCheck());
  EXPECT_FALSE(result.valid);
}

TEST(BenchmarkDriverTest, InvalidWhenTimeFloorMissed) {
  auto sut = MakeSut(3);
  BenchmarkConfig config;
  config.num_driver_instances = 1;
  config.total_kvps = 2000;
  config.min_run_seconds = 3600;  // impossible for this tiny run
  config.min_per_sensor_rate = 0;
  config.skip_warmup = true;
  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_FALSE(result.valid);
  EXPECT_FALSE(result.invalid_reason.empty());
}

TEST(ReportTest, SummaryAndFdrContainTheMetrics) {
  auto sut = MakeSut(3);
  BenchmarkConfig config;
  config.num_driver_instances = 1;
  config.total_kvps = 15000;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.skip_warmup = true;
  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  ASSERT_TRUE(result.status.ok());

  PricedConfiguration pricing =
      PricedConfiguration::ReferenceGatewayConfig(3);
  SutDescription sut_desc;
  sut_desc.nodes = 3;

  std::string summary = ExecutiveSummary(result, pricing, sut_desc);
  EXPECT_NE(summary.find("IoTps"), std::string::npos);
  EXPECT_NE(summary.find("$/IoTps"), std::string::npos);
  EXPECT_NE(summary.find("2017-05-01"), std::string::npos);

  std::string fdr = FullDisclosureReport(result, pricing, sut_desc);
  EXPECT_NE(fdr.find("Iteration 1"), std::string::npos);
  EXPECT_NE(fdr.find("Iteration 2"), std::string::npos);
  EXPECT_NE(fdr.find("Priced configuration"), std::string::npos);
  EXPECT_NE(fdr.find("data check"), std::string::npos);
  EXPECT_NE(fdr.find("TOTAL"), std::string::npos);
  EXPECT_NE(fdr.find("[PASS] measurement window"), std::string::npos);
}

TEST(ReportTest, FdrFlagsAnInvalidMeasurementWindow) {
  BenchmarkResult result;
  for (int i = 0; i < 2; ++i) {
    RunMetrics& m = result.iterations[i].measured.metrics;
    m.kvps_ingested = 1000;
    m.ts_start_micros = 2000000;
    m.ts_end_micros = i == 0 ? 1000000 : 3000000;  // iteration 1 reversed
    result.iterations[i].data_check = {true, "data check", "ok"};
  }
  result.valid = false;
  result.invalid_reason = result.iterations[0].measured.metrics.Validate()
                              .message();

  std::string fdr = FullDisclosureReport(
      result, PricedConfiguration::ReferenceGatewayConfig(3),
      SutDescription{});
  EXPECT_NE(fdr.find("[FAIL] measurement window"), std::string::npos);
  EXPECT_NE(fdr.find("invalid measurement window"), std::string::npos);
  EXPECT_NE(fdr.find("[PASS] measurement window"), std::string::npos);
}

TEST(ReportTest, FdrAndReportFilesCarryTheObsSnapshot) {
  obs::SetEnabled(true);
  auto sut = MakeSut(3);
  BenchmarkConfig config;
  config.num_driver_instances = 1;
  config.total_kvps = 15000;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.skip_warmup = true;
  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  ASSERT_TRUE(result.status.ok());

  const obs::MetricsSnapshot& delta =
      result.iterations[result.performance_run].measured.obs_delta;
  ASSERT_FALSE(delta.empty());
  // The measured window saw real traffic in every wired layer.
  EXPECT_GE(delta.counters.at("storage.ops.puts"), 15000u);
  EXPECT_GE(delta.counters.at("cluster.ops.writes"), 15000u);
  EXPECT_EQ(delta.counters.at("driver.ingest.kvps"), 15000u);
  EXPECT_GT(delta.histograms.at("storage.wal.append_micros").count, 0u);

  PricedConfiguration pricing =
      PricedConfiguration::ReferenceGatewayConfig(3);
  SutDescription sut_desc;
  std::string fdr = FullDisclosureReport(result, pricing, sut_desc);
  EXPECT_NE(fdr.find("Observability"), std::string::npos);
  EXPECT_NE(fdr.find("storage.wal.append_micros"), std::string::npos);

  auto env = storage::NewMemEnv();
  ASSERT_TRUE(WriteReportFiles(env.get(), "/fdr", result, pricing, sut_desc)
                  .ok());
  std::string json;
  ASSERT_TRUE(env->ReadFileToString("/fdr/metrics.json", &json).ok());
  auto parsed = obs::MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.ValueOrDie() == delta);
}

}  // namespace
}  // namespace iot
}  // namespace iotdb
