#include "iot/config.h"

#include <gtest/gtest.h>

#include "iot/report.h"
#include "storage/env.h"

namespace iotdb {
namespace iot {
namespace {

TEST(BenchmarkConfigTest, DefaultsMatchTheKit) {
  Properties empty;
  auto config = LoadBenchmarkConfig(empty);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.ValueOrDie().num_driver_instances, 1);
  EXPECT_EQ(config.ValueOrDie().total_kvps, Rules::kDefaultTotalKvps);
  EXPECT_DOUBLE_EQ(config.ValueOrDie().min_run_seconds, 1800.0);
  EXPECT_DOUBLE_EQ(config.ValueOrDie().min_per_sensor_rate, 20.0);
}

TEST(BenchmarkConfigTest, ParsesAllKeys) {
  Properties props;
  ASSERT_TRUE(props
                  .ParseText("driver_instances=16\n"
                             "total_kvps=400000000\n"
                             "batch_size=1000\n"
                             "seed=7\n"
                             "min_run_seconds=90\n"
                             "min_per_sensor_rate=1\n"
                             "skip_warmup=true\n")
                  .ok());
  auto result = LoadBenchmarkConfig(props);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BenchmarkConfig& config = result.ValueOrDie();
  EXPECT_EQ(config.num_driver_instances, 16);
  EXPECT_EQ(config.total_kvps, 400000000ull);
  EXPECT_EQ(config.batch_size, 1000u);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_DOUBLE_EQ(config.min_run_seconds, 90.0);
  EXPECT_TRUE(config.skip_warmup);
}

TEST(BenchmarkConfigTest, TimelineCadenceParsesAndRoundTrips) {
  Properties empty;
  auto defaults = LoadBenchmarkConfig(empty);
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.ValueOrDie().timeline_cadence_micros, 1'000'000u);

  Properties props;
  props.Set("timeline.cadence_ms", "250");
  auto parsed = LoadBenchmarkConfig(props);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.ValueOrDie().timeline_cadence_micros, 250'000u);

  Properties round = BenchmarkConfigToProperties(parsed.ValueOrDie());
  auto restored = LoadBenchmarkConfig(round);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.ValueOrDie().timeline_cadence_micros, 250'000u);

  Properties zero;
  zero.Set("timeline.cadence_ms", "0");
  EXPECT_TRUE(LoadBenchmarkConfig(zero).status().IsInvalidArgument());
}

TEST(BenchmarkConfigTest, UnknownKeysRejected) {
  Properties props;
  props.Set("driver_instnaces", "4");  // typo must not silently default
  EXPECT_TRUE(LoadBenchmarkConfig(props).status().IsInvalidArgument());
}

TEST(BenchmarkConfigTest, InvalidValuesRejected) {
  Properties zero_instances;
  zero_instances.Set("driver_instances", "0");
  EXPECT_FALSE(LoadBenchmarkConfig(zero_instances).ok());

  Properties too_few_kvps;
  too_few_kvps.Set("driver_instances", "10");
  too_few_kvps.Set("total_kvps", "5");
  EXPECT_FALSE(LoadBenchmarkConfig(too_few_kvps).ok());

  Properties bad_type;
  bad_type.Set("total_kvps", "a billion");
  EXPECT_FALSE(LoadBenchmarkConfig(bad_type).ok());
}

TEST(BenchmarkConfigTest, RoundTripsThroughProperties) {
  BenchmarkConfig config;
  config.num_driver_instances = 8;
  config.total_kvps = 240000000;
  config.batch_size = 777;
  config.seed = 5;
  config.skip_warmup = true;
  Properties props = BenchmarkConfigToProperties(config);
  auto restored = LoadBenchmarkConfig(props);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie().num_driver_instances, 8);
  EXPECT_EQ(restored.ValueOrDie().total_kvps, 240000000ull);
  EXPECT_EQ(restored.ValueOrDie().batch_size, 777u);
  EXPECT_TRUE(restored.ValueOrDie().skip_warmup);
}

TEST(BenchmarkConfigTest, ParsesFaultSchedule) {
  Properties props;
  ASSERT_TRUE(props
                  .ParseText("fault.kill_node=1\n"
                             "fault.at_ops=5000\n"
                             "fault.restart_after_ops=2000\n")
                  .ok());
  auto result = LoadBenchmarkConfig(props);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().fault_kill_node, 1);
  EXPECT_EQ(result.ValueOrDie().fault_at_ops, 5000u);
  EXPECT_EQ(result.ValueOrDie().fault_restart_after_ops, 2000u);

  // Defaults: no fault schedule.
  Properties empty;
  EXPECT_EQ(LoadBenchmarkConfig(empty).ValueOrDie().fault_kill_node, -1);
}

TEST(BenchmarkConfigTest, FaultScheduleValidated) {
  Properties orphan_threshold;
  orphan_threshold.Set("fault.at_ops", "100");  // no fault.kill_node
  EXPECT_TRUE(
      LoadBenchmarkConfig(orphan_threshold).status().IsInvalidArgument());

  Properties negative;
  negative.Set("fault.kill_node", "0");
  negative.Set("fault.at_ops", "-5");
  EXPECT_FALSE(LoadBenchmarkConfig(negative).ok());
}

TEST(BenchmarkConfigTest, ParsesCorruptionSchedule) {
  Properties props;
  ASSERT_TRUE(props
                  .ParseText("fault.corrupt_sstable=2\n"
                             "fault.corrupt_at_ops=4000\n"
                             "fault.corrupt_bits=16\n")
                  .ok());
  auto result = LoadBenchmarkConfig(props);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().fault_corrupt_node, 2);
  EXPECT_EQ(result.ValueOrDie().fault_corrupt_at_ops, 4000u);
  EXPECT_EQ(result.ValueOrDie().fault_corrupt_bits, 16);

  // Defaults: no corruption schedule.
  Properties empty;
  EXPECT_EQ(LoadBenchmarkConfig(empty).ValueOrDie().fault_corrupt_node, -1);

  // Round-trip through the serialized form.
  Properties serialized =
      BenchmarkConfigToProperties(result.ValueOrDie());
  auto restored = LoadBenchmarkConfig(serialized);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie().fault_corrupt_node, 2);
  EXPECT_EQ(restored.ValueOrDie().fault_corrupt_at_ops, 4000u);
  EXPECT_EQ(restored.ValueOrDie().fault_corrupt_bits, 16);
}

TEST(BenchmarkConfigTest, ParsesCorruptTarget) {
  // Default victim class is the SSTable.
  Properties empty;
  EXPECT_EQ(LoadBenchmarkConfig(empty).ValueOrDie().fault_corrupt_target,
            "sstable");

  Properties vlog;
  ASSERT_TRUE(vlog.ParseText("fault.corrupt_sstable=1\n"
                             "fault.corrupt_target=vlog\n")
                  .ok());
  auto result = LoadBenchmarkConfig(vlog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().fault_corrupt_target, "vlog");

  // Round-trip through the serialized form.
  auto restored =
      LoadBenchmarkConfig(BenchmarkConfigToProperties(result.ValueOrDie()));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie().fault_corrupt_target, "vlog");

  Properties bogus;
  bogus.Set("fault.corrupt_target", "manifest");
  EXPECT_TRUE(LoadBenchmarkConfig(bogus).status().IsInvalidArgument());
}

TEST(BenchmarkConfigTest, CorruptionScheduleValidated) {
  Properties orphan_threshold;
  orphan_threshold.Set("fault.corrupt_at_ops", "100");  // no target node
  EXPECT_TRUE(
      LoadBenchmarkConfig(orphan_threshold).status().IsInvalidArgument());

  Properties zero_bits;
  zero_bits.Set("fault.corrupt_sstable", "0");
  zero_bits.Set("fault.corrupt_bits", "0");
  EXPECT_TRUE(LoadBenchmarkConfig(zero_bits).status().IsInvalidArgument());
}

TEST(BenchmarkConfigTest, FaultScheduleRoundTrips) {
  BenchmarkConfig config;
  config.fault_kill_node = 2;
  config.fault_at_ops = 1000;
  config.fault_restart_after_ops = 500;
  auto restored = LoadBenchmarkConfig(BenchmarkConfigToProperties(config));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie().fault_kill_node, 2);
  EXPECT_EQ(restored.ValueOrDie().fault_at_ops, 1000u);
  EXPECT_EQ(restored.ValueOrDie().fault_restart_after_ops, 500u);
}

TEST(BenchmarkConfigTest, ParsesNetFaultSchedule) {
  Properties props;
  ASSERT_TRUE(props
                  .ParseText("fault.net_partition_node=2\n"
                             "fault.net_partition_at_ops=5000\n"
                             "fault.net_heal_after_ops=3000\n"
                             "fault.net_delay_node=1\n"
                             "fault.net_delay_ms=50\n"
                             "fault.net_drop_pct=0.01\n"
                             "fault.net_dup_pct=0.02\n"
                             "fault.net_reorder_pct=0.05\n")
                  .ok());
  auto result = LoadBenchmarkConfig(props);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BenchmarkConfig& config = result.ValueOrDie();
  EXPECT_EQ(config.fault_net_partition_node, 2);
  EXPECT_EQ(config.fault_net_partition_at_ops, 5000u);
  EXPECT_EQ(config.fault_net_heal_after_ops, 3000u);
  EXPECT_EQ(config.fault_net_delay_node, 1);
  EXPECT_EQ(config.fault_net_delay_ms, 50u);
  EXPECT_DOUBLE_EQ(config.fault_net_drop_pct, 0.01);
  EXPECT_DOUBLE_EQ(config.fault_net_dup_pct, 0.02);
  EXPECT_DOUBLE_EQ(config.fault_net_reorder_pct, 0.05);
  EXPECT_TRUE(config.HasNetFaultSchedule());

  // Defaults: no net fault schedule.
  Properties empty;
  auto defaults = LoadBenchmarkConfig(empty);
  EXPECT_EQ(defaults.ValueOrDie().fault_net_partition_node, -1);
  EXPECT_FALSE(defaults.ValueOrDie().HasNetFaultSchedule());

  // Round-trip through the serialized form.
  auto restored =
      LoadBenchmarkConfig(BenchmarkConfigToProperties(result.ValueOrDie()));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie().fault_net_partition_node, 2);
  EXPECT_EQ(restored.ValueOrDie().fault_net_partition_at_ops, 5000u);
  EXPECT_EQ(restored.ValueOrDie().fault_net_heal_after_ops, 3000u);
  EXPECT_EQ(restored.ValueOrDie().fault_net_delay_node, 1);
  EXPECT_EQ(restored.ValueOrDie().fault_net_delay_ms, 50u);
  EXPECT_DOUBLE_EQ(restored.ValueOrDie().fault_net_drop_pct, 0.01);
}

TEST(BenchmarkConfigTest, NetFaultScheduleValidated) {
  Properties orphan_threshold;
  orphan_threshold.Set("fault.net_partition_at_ops", "100");
  EXPECT_TRUE(
      LoadBenchmarkConfig(orphan_threshold).status().IsInvalidArgument());

  Properties orphan_delay;
  orphan_delay.Set("fault.net_delay_ms", "50");  // no delay node
  EXPECT_TRUE(LoadBenchmarkConfig(orphan_delay).status().IsInvalidArgument());

  Properties zero_delay;
  zero_delay.Set("fault.net_delay_node", "1");  // no delay amount
  EXPECT_TRUE(LoadBenchmarkConfig(zero_delay).status().IsInvalidArgument());

  Properties bad_pct;
  bad_pct.Set("fault.net_drop_pct", "1.5");
  EXPECT_TRUE(LoadBenchmarkConfig(bad_pct).status().IsInvalidArgument());

  Properties negative_pct;
  negative_pct.Set("fault.net_reorder_pct", "-0.1");
  EXPECT_TRUE(LoadBenchmarkConfig(negative_pct).status().IsInvalidArgument());
}

TEST(ReportFilesTest, WritesBothArtifacts) {
  auto env = storage::NewMemEnv();
  BenchmarkResult result;
  result.valid = true;
  result.iterations[0].measured.metrics = {1000, 0, 1000000};
  result.iterations[1].measured.metrics = {1000, 0, 2000000};
  PricedConfiguration pricing =
      PricedConfiguration::ReferenceGatewayConfig(2);
  SutDescription sut;
  sut.nodes = 2;
  ASSERT_TRUE(
      WriteReportFiles(env.get(), "/reports", result, pricing, sut).ok());
  std::string summary;
  ASSERT_TRUE(env->ReadFileToString("/reports/executive_summary.txt",
                                    &summary)
                  .ok());
  EXPECT_NE(summary.find("IoTps"), std::string::npos);
  std::string fdr;
  ASSERT_TRUE(
      env->ReadFileToString("/reports/full_disclosure_report.txt", &fdr)
          .ok());
  EXPECT_NE(fdr.find("Priced configuration"), std::string::npos);
}

}  // namespace
}  // namespace iot
}  // namespace iotdb
