// Cross-module integration tests: shard routing invariants, retention on a
// replicated cluster, concurrent multi-substation ingest with live
// dashboards, and the kit running against every cluster size the paper
// evaluates.
#include <gtest/gtest.h>

#include <thread>

#include "cluster/cluster.h"
#include "iot/benchmark_driver.h"
#include "iot/kvp.h"
#include "iot/retention.h"
#include "ycsb/bindings.h"

namespace iotdb {
namespace iot {
namespace {

TEST(ShardKeyTest, IsIdempotent) {
  // Cluster::Scan hashes the caller-provided shard key directly, so the
  // extractor must be a fixed point on its own output.
  std::string row = KvpCodec::EncodeKey("sub07", "mis_h2_004", 123456789);
  Slice once = TpcxIotShardKey(row);
  Slice twice = TpcxIotShardKey(once);
  EXPECT_EQ(once.ToString(), twice.ToString());
}

TEST(ShardKeyTest, AllReadingsOfASensorShareAShard) {
  cluster::ClusterOptions options;
  options.num_nodes = 8;
  options.shard_key_fn = TpcxIotShardKey;
  auto cluster = cluster::Cluster::Start(options).MoveValueUnsafe();
  int first = -1;
  for (uint64_t ts = 0; ts < 100000; ts += 13337) {
    std::string row = KvpCodec::EncodeKey("sub07", "mis_h2_004", ts);
    int primary = cluster->PrimaryNodeFor(row);
    if (first < 0) first = primary;
    EXPECT_EQ(primary, first) << ts;
  }
}

TEST(ShardKeyTest, DifferentSensorsSpreadAcrossNodes) {
  cluster::ClusterOptions options;
  options.num_nodes = 8;
  options.shard_key_fn = TpcxIotShardKey;
  auto cluster = cluster::Cluster::Start(options).MoveValueUnsafe();
  std::set<int> nodes;
  for (const SensorType& sensor : SensorCatalog::Default().sensors()) {
    std::string row = KvpCodec::EncodeKey("sub01", sensor.key, 42);
    nodes.insert(cluster->PrimaryNodeFor(row));
  }
  EXPECT_EQ(nodes.size(), 8u) << "200 sensors should cover all 8 nodes";
}

TEST(RetentionClusterTest, AgesOutAcrossReplicas) {
  ManualClock clock(10000ull * 1000000);
  SensorDataRetentionFilter filter(1000ull * 1000000, &clock);

  cluster::ClusterOptions options;
  options.num_nodes = 3;
  options.shard_key_fn = TpcxIotShardKey;
  options.storage_options.compaction_filter = &filter;
  auto cluster = cluster::Cluster::Start(options).MoveValueUnsafe();
  cluster::Client client(cluster.get());

  // Half stale, half fresh.
  for (int i = 0; i < 40; ++i) {
    uint64_t age = (i % 2 == 0) ? 5000 + i : 10 + i;
    std::string key = KvpCodec::EncodeKey(
        "sub01", "ltc_gas_000", clock.NowMicros() - age * 1000000);
    ASSERT_TRUE(client.Put(key, "reading").ok());
  }
  // Puts ack at quorum; drain the slow replica before compacting so no
  // write lands in a memtable the filter already walked.
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    ASSERT_TRUE(cluster->node(n)->store()->CompactAll().ok());
  }
  // Fresh readings remain reachable through the client; stale are gone.
  uint64_t live = 0;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    live += cluster->node(n)->store()->CountKeysSlow();
  }
  // 20 fresh keys x 3 replicas.
  EXPECT_EQ(live, 60u);
}

TEST(MultiSubstationIntegrationTest, ConcurrentDriversShareTheCluster) {
  cluster::ClusterOptions options;
  options.num_nodes = 4;
  options.shard_key_fn = TpcxIotShardKey;
  auto cluster = cluster::Cluster::Start(options).MoveValueUnsafe();
  ycsb::ClusterDB db(cluster.get());

  constexpr int kDrivers = 3;
  constexpr uint64_t kKvpsEach = 12000;
  std::vector<std::thread> threads;
  std::vector<DriverResult> results(kDrivers);
  for (int i = 0; i < kDrivers; ++i) {
    threads.emplace_back([&db, &results, i] {
      DriverOptions driver_options;
      driver_options.substation_key = "sub" + std::to_string(i);
      driver_options.total_kvps = kKvpsEach;
      driver_options.batch_size = 400;
      driver_options.seed = 100 + i;
      DriverInstance driver(driver_options, &db);
      results[i] = driver.Run();
    });
  }
  for (auto& thread : threads) thread.join();
  // Writes return at quorum; quiesce so every primary apply (and any
  // straggler hint) lands before the per-node stats are compared.
  ASSERT_TRUE(cluster->WaitReplicationIdle().ok());

  uint64_t queries = 0;
  for (const DriverResult& r : results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.kvps_ingested, kKvpsEach);
    queries += r.queries_executed;
  }
  EXPECT_EQ(queries, kDrivers * 5u);  // one 10k batch each -> 5 queries
  // Drivers retry Unavailable batches, so a loaded run can apply a batch
  // more than once; applies are at-least-once but keys are unique, so the
  // replicated key count is still exact.
  EXPECT_GE(cluster->GetAggregateStats().primary_writes,
            kDrivers * kKvpsEach);
  uint64_t keys = 0;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    keys += cluster->node(n)->store()->CountKeysSlow();
  }
  EXPECT_EQ(keys, kDrivers * kKvpsEach * 3);  // rf 3 on 4 nodes
}

class KitOnClusterSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(KitOnClusterSizeTest, BenchmarkRunsOnPaperClusterSizes) {
  cluster::ClusterOptions options;
  options.num_nodes = GetParam();
  options.shard_key_fn = TpcxIotShardKey;
  auto sut = cluster::Cluster::Start(options).MoveValueUnsafe();

  BenchmarkConfig config;
  config.num_driver_instances = 2;
  config.total_kvps = 8000;
  config.batch_size = 400;
  config.min_run_seconds = 0;
  config.min_per_sensor_rate = 0;
  config.skip_warmup = true;
  BenchmarkDriver driver(config, sut.get());
  BenchmarkResult result = driver.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.valid) << result.invalid_reason;
  EXPECT_GT(result.IoTps(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, KitOnClusterSizeTest,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace iot
}  // namespace iotdb
