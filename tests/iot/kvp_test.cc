// Sensor catalog, kvp codec, and execution-rule tests.
#include <gtest/gtest.h>

#include <set>

#include "iot/kvp.h"
#include "iot/rules.h"
#include "iot/sensor.h"

namespace iotdb {
namespace iot {
namespace {

TEST(SensorCatalogTest, ExactlyTwoHundredSensors) {
  const SensorCatalog& catalog = SensorCatalog::Default();
  EXPECT_EQ(catalog.size(), 200u);
  EXPECT_EQ(SensorCatalog::kSensorsPerSubstation, 200);
}

TEST(SensorCatalogTest, KeysAreUniqueAndWithinFigure7Limits) {
  const SensorCatalog& catalog = SensorCatalog::Default();
  std::set<std::string> keys;
  for (const SensorType& sensor : catalog.sensors()) {
    EXPECT_TRUE(keys.insert(sensor.key).second) << sensor.key;
    EXPECT_GE(sensor.key.size(), 1u);
    EXPECT_LE(sensor.key.size(), 64u);  // Figure 7: sensor key 1-64 chars
    EXPECT_GE(sensor.unit.size(), 3u);
    EXPECT_LE(sensor.unit.size(), 34u);  // Figure 7: unit 4-34 chars
    EXPECT_LT(sensor.min_value, sensor.max_value);
    EXPECT_EQ(sensor.key.find(KvpCodec::kKeySeparator), std::string::npos);
  }
}

TEST(SensorCatalogTest, ContainsThePaperSensorFamilies) {
  const SensorCatalog& catalog = SensorCatalog::Default();
  EXPECT_GE(catalog.IndexOf("ltc_gas_000"), 0);
  EXPECT_GE(catalog.IndexOf("pmu_phasor_000"), 0);
  EXPECT_GE(catalog.IndexOf("leakage_000"), 0);
  EXPECT_GE(catalog.IndexOf("mis_h2_000"), 0);
  EXPECT_EQ(catalog.IndexOf("not_a_sensor"), -1);
}

TEST(KvpCodecTest, EncodedKvpIsExactly1KiB) {
  Reading reading;
  reading.substation_key = "sub0001";
  reading.sensor_key = "pmu_phasor_003";
  reading.timestamp_micros = 1496325600000000ull;
  reading.value = 59.98;
  reading.unit = "hertz";
  Kvp kvp = KvpCodec::Encode(reading, 42);
  EXPECT_EQ(kvp.key.size() + kvp.value.size(), KvpCodec::kKvpBytes);
}

TEST(KvpCodecTest, RoundTrip) {
  Reading reading;
  reading.substation_key = "larkin_sf";
  reading.sensor_key = "ltc_gas_011";
  reading.timestamp_micros = 1234567890123456ull;
  reading.value = 1543.2188;
  reading.unit = "ppm";
  Kvp kvp = KvpCodec::Encode(reading, 7);

  auto decoded = KvpCodec::Decode(kvp.key, kvp.value);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Reading& out = decoded.ValueOrDie();
  EXPECT_EQ(out.substation_key, "larkin_sf");
  EXPECT_EQ(out.sensor_key, "ltc_gas_011");
  EXPECT_EQ(out.timestamp_micros, 1234567890123456ull);
  EXPECT_NEAR(out.value, 1543.2188, 1e-4);
  EXPECT_EQ(out.unit, "ppm");
}

TEST(KvpCodecTest, KeysSortByTimeWithinSensor) {
  std::string earlier = KvpCodec::EncodeKey("sub1", "sensor_a", 999);
  std::string later = KvpCodec::EncodeKey("sub1", "sensor_a", 1000);
  std::string much_later =
      KvpCodec::EncodeKey("sub1", "sensor_a", 10000000000000ull);
  EXPECT_LT(earlier, later);
  EXPECT_LT(later, much_later);
}

TEST(KvpCodecTest, ShardPrefixDropsTimestampOnly) {
  std::string key = KvpCodec::EncodeKey("sub42", "leakage_003", 123456);
  Slice prefix = KvpCodec::ShardPrefixOf(key);
  EXPECT_EQ(prefix.ToString(), "sub42.leakage_003");
  // The prefix is shared by all timestamps of the sensor.
  std::string key2 = KvpCodec::EncodeKey("sub42", "leakage_003", 999999);
  EXPECT_EQ(KvpCodec::ShardPrefixOf(key2).ToString(), "sub42.leakage_003");
}

TEST(KvpCodecTest, DecodeTimestampFromRowKey) {
  std::string key = KvpCodec::EncodeKey("s", "x", 77777);
  EXPECT_EQ(KvpCodec::DecodeTimestamp(key).ValueOrDie(), 77777u);
  EXPECT_FALSE(KvpCodec::DecodeTimestamp(Slice("short")).ok());
}

TEST(KvpCodecTest, MalformedInputsRejected) {
  EXPECT_FALSE(KvpCodec::Decode("noseparators", "1.0|u|pad").ok());
  EXPECT_FALSE(KvpCodec::Decode("a.b.123", "1.0|u|p").ok());  // bad ts width
  std::string good_key = KvpCodec::EncodeKey("s", "x", 1);
  EXPECT_FALSE(KvpCodec::Decode(good_key, "novalueseparator").ok());
  EXPECT_FALSE(KvpCodec::DecodeSensorValue("|unit|pad").ok());
}

TEST(RulesTest, Equation1SystemRate) {
  // 200 sensors/substation * 20 kvps/s = 4000 kvps/s per substation.
  EXPECT_DOUBLE_EQ(Rules::MinimumSystemRate(1), 4000.0);
  EXPECT_DOUBLE_EQ(Rules::MinimumSystemRate(48), 192000.0);
  // 4000 kvps/s * 1 KiB = 4,096,000 B/s = 3.91 MB/s.
  EXPECT_NEAR(Rules::MinimumSystemRateBytes(1) / 1048576.0, 3.91, 0.01);
}

TEST(RulesTest, Equation2WindowRows) {
  // 20 kvps/s * 5 s = 100 kvps per window.
  EXPECT_DOUBLE_EQ(Rules::MinKvpsPerWindow(), 100.0);
  // Both windows: the 200 validity floor of Figure 12.
  EXPECT_DOUBLE_EQ(Rules::kMinKvpsPerQuery, 200.0);
}

TEST(RulesTest, Equation3DriverShares) {
  // K=10, P=3: drivers get 3, 3, 4.
  EXPECT_EQ(Rules::KvpsForDriver(1, 3, 10), 3u);
  EXPECT_EQ(Rules::KvpsForDriver(2, 3, 10), 3u);
  EXPECT_EQ(Rules::KvpsForDriver(3, 3, 10), 4u);

  // Shares always sum to K.
  for (uint64_t k : {1000ull, 999999937ull}) {
    for (int p : {1, 7, 48}) {
      uint64_t total = 0;
      for (int i = 1; i <= p; ++i) total += Rules::KvpsForDriver(i, p, k);
      EXPECT_EQ(total, k) << "P=" << p << " K=" << k;
    }
  }
}

TEST(RulesTest, QueryCadence) {
  // Five queries per 10,000 readings.
  EXPECT_EQ(Rules::kQueriesPerReadings, 5u);
  EXPECT_EQ(Rules::kReadingsPerQueryBatch, 10000u);
  EXPECT_EQ(Rules::kDefaultTotalKvps, 1000000000ull);
}

}  // namespace
}  // namespace iot
}  // namespace iotdb
