// DataGenerator and query template tests, including end-to-end execution
// against a real KVStore.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/clock.h"
#include "iot/data_generator.h"
#include "iot/query.h"
#include "storage/env.h"
#include "storage/kvstore.h"
#include "ycsb/bindings.h"

namespace iotdb {
namespace iot {
namespace {

TEST(DataGeneratorTest, GeneratesRequestedCount) {
  ManualClock clock(1000000);
  DataGenerator gen("sub1", 450, 7, &clock);
  uint64_t n = 0;
  while (gen.HasNext()) {
    gen.Next();
    ++n;
  }
  EXPECT_EQ(n, 450u);
  EXPECT_EQ(gen.generated(), 450u);
}

TEST(DataGeneratorTest, RoundRobinsAcrossAllSensors) {
  ManualClock clock(0);
  DataGenerator gen("sub1", 400, 7, &clock);
  std::set<std::string> first_sweep;
  for (int i = 0; i < 200; ++i) {
    first_sweep.insert(gen.NextReading().sensor_key);
  }
  EXPECT_EQ(first_sweep.size(), 200u);  // every sensor exactly once
}

TEST(DataGeneratorTest, TimestampsAreStrictlyIncreasing) {
  ManualClock clock(500);  // frozen clock: collisions force +1 bumps
  DataGenerator gen("sub1", 1000, 7, &clock);
  uint64_t last = 0;
  while (gen.HasNext()) {
    Reading r = gen.NextReading();
    EXPECT_GT(r.timestamp_micros, last);
    last = r.timestamp_micros;
  }
}

TEST(DataGeneratorTest, ValuesWithinSensorRange) {
  ManualClock clock(0);
  const SensorCatalog& catalog = SensorCatalog::Default();
  DataGenerator gen("sub1", 600, 7, &clock);
  for (int i = 0; i < 600; ++i) {
    Reading r = gen.NextReading();
    int idx = catalog.IndexOf(r.sensor_key);
    ASSERT_GE(idx, 0);
    EXPECT_GE(r.value, catalog.sensor(idx).min_value);
    EXPECT_LE(r.value, catalog.sensor(idx).max_value);
    EXPECT_EQ(r.unit, catalog.sensor(idx).unit);
  }
}

TEST(DataGeneratorTest, DeterministicForSeed) {
  ManualClock c1(0), c2(0);
  DataGenerator a("sub1", 100, 99, &c1);
  DataGenerator b("sub1", 100, 99, &c2);
  for (int i = 0; i < 100; ++i) {
    Kvp ka = a.Next();
    Kvp kb = b.Next();
    EXPECT_EQ(ka.key, kb.key);
    EXPECT_EQ(ka.value, kb.value);
  }
}

TEST(QueryGeneratorTest, WindowsMatchSpec) {
  ManualClock clock(3600ull * 1000000);  // t = 1 hour
  QueryGenerator gen("sub1", 7, &clock);
  for (int i = 0; i < 200; ++i) {
    Query q = gen.Next();
    // Recent window is the last 5 seconds.
    EXPECT_EQ(q.recent_end_micros, clock.NowMicros());
    EXPECT_EQ(q.recent_end_micros - q.recent_start_micros, 5000000u);
    // Past window is 5 s long, inside the previous 1800 s, and does not
    // overlap the recent window.
    EXPECT_EQ(q.past_end_micros - q.past_start_micros, 5000000u);
    EXPECT_GE(q.past_start_micros,
              clock.NowMicros() - 1800ull * 1000000);
    EXPECT_LE(q.past_end_micros, q.recent_start_micros);
    EXPECT_EQ(q.substation_key, "sub1");
    EXPECT_GE(SensorCatalog::Default().IndexOf(q.sensor_key), 0);
  }
}

TEST(QueryGeneratorTest, CoversAllFourTemplates) {
  ManualClock clock(1ull << 40);
  QueryGenerator gen("sub1", 3, &clock);
  std::set<QueryType> seen;
  for (int i = 0; i < 100; ++i) seen.insert(gen.Next().type);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(QueryTypeTest, Names) {
  EXPECT_STREQ(QueryTypeName(QueryType::kMaxReading), "MAX_READING");
  EXPECT_STREQ(QueryTypeName(QueryType::kMinReading), "MIN_READING");
  EXPECT_STREQ(QueryTypeName(QueryType::kAvgReading), "AVG_READING");
  EXPECT_STREQ(QueryTypeName(QueryType::kReadingCount), "READING_COUNT");
}

class QueryExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = storage::NewMemEnv();
    storage::Options options;
    options.env = env_.get();
    store_ = storage::KVStore::Open(options, "/qx").MoveValueUnsafe();
    db_ = std::make_unique<ycsb::KVStoreDB>(store_.get());
  }

  // Inserts `n` readings for one sensor, one per millisecond ending at
  // `end_micros`, with values 1..n (newest = n).
  void InsertSeries(const std::string& sensor, uint64_t end_micros,
                    int n) {
    for (int i = 1; i <= n; ++i) {
      Reading r;
      r.substation_key = "sub1";
      r.sensor_key = sensor;
      r.timestamp_micros = end_micros - (n - i) * 1000;
      r.value = i;
      r.unit = "unit";
      Kvp kvp = KvpCodec::Encode(r, i);
      ASSERT_TRUE(db_->Insert(kvp.key, kvp.value).ok());
    }
  }

  std::unique_ptr<storage::Env> env_;
  std::unique_ptr<storage::KVStore> store_;
  std::unique_ptr<ycsb::DB> db_;
};

TEST_F(QueryExecutionTest, AggregatesBothWindows) {
  const uint64_t now = 10000ull * 1000000;
  // Recent window [now-5s, now): values 101..200 (100 readings at 1/ms
  // would span 0.1s; use 1 reading per 50ms => 100 readings span 5s).
  for (int i = 0; i < 100; ++i) {
    Reading r;
    r.substation_key = "sub1";
    r.sensor_key = "pmu_freq_000";
    r.timestamp_micros = now - 5000000 + i * 50000;
    r.value = 101 + i;
    r.unit = "hertz";
    Kvp kvp = KvpCodec::Encode(r, i);
    ASSERT_TRUE(db_->Insert(kvp.key, kvp.value).ok());
  }
  // Past window [now-100s, now-95s): values 1..50.
  for (int i = 0; i < 50; ++i) {
    Reading r;
    r.substation_key = "sub1";
    r.sensor_key = "pmu_freq_000";
    r.timestamp_micros = now - 100000000 + i * 100000;
    r.value = 1 + i;
    r.unit = "hertz";
    Kvp kvp = KvpCodec::Encode(r, 1000 + i);
    ASSERT_TRUE(db_->Insert(kvp.key, kvp.value).ok());
  }

  Query query;
  query.type = QueryType::kMaxReading;
  query.substation_key = "sub1";
  query.sensor_key = "pmu_freq_000";
  query.recent_start_micros = now - 5000000;
  query.recent_end_micros = now;
  query.past_start_micros = now - 100000000;
  query.past_end_micros = now - 95000000;

  QueryExecutor executor(db_.get());
  auto result = executor.Execute(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResult& qr = result.ValueOrDie();
  EXPECT_EQ(qr.recent.count, 100u);
  EXPECT_EQ(qr.past.count, 50u);
  EXPECT_EQ(qr.rows_read, 150u);
  EXPECT_DOUBLE_EQ(qr.recent_value, 200.0);  // max of recent
  EXPECT_DOUBLE_EQ(qr.past_value, 50.0);     // max of past

  // The other templates on the same windows.
  query.type = QueryType::kMinReading;
  auto min_result = executor.Execute(query).ValueOrDie();
  EXPECT_DOUBLE_EQ(min_result.recent_value, 101.0);
  EXPECT_DOUBLE_EQ(min_result.past_value, 1.0);

  query.type = QueryType::kAvgReading;
  auto avg_result = executor.Execute(query).ValueOrDie();
  EXPECT_NEAR(avg_result.recent_value, 150.5, 1e-9);
  EXPECT_NEAR(avg_result.past_value, 25.5, 1e-9);

  query.type = QueryType::kReadingCount;
  auto count_result = executor.Execute(query).ValueOrDie();
  EXPECT_DOUBLE_EQ(count_result.recent_value, 100.0);
  EXPECT_DOUBLE_EQ(count_result.past_value, 50.0);
}

TEST_F(QueryExecutionTest, EmptyWindowsAreZero) {
  // Warmup situation: no data in the past window at all.
  Query query;
  query.type = QueryType::kReadingCount;
  query.substation_key = "sub1";
  query.sensor_key = "pmu_freq_000";
  query.recent_start_micros = 0;
  query.recent_end_micros = 5000000;
  query.past_start_micros = 10000000;
  query.past_end_micros = 15000000;
  QueryExecutor executor(db_.get());
  auto result = executor.Execute(query).ValueOrDie();
  EXPECT_EQ(result.rows_read, 0u);
  EXPECT_DOUBLE_EQ(result.recent_value, 0.0);
}

TEST_F(QueryExecutionTest, SelectionIsolatesSensorAndSubstation) {
  const uint64_t now = 5000ull * 1000000;
  InsertSeries("ltc_gas_000", now, 10);
  InsertSeries("ltc_gas_001", now, 10);  // neighbour sensor, same window

  Query query;
  query.type = QueryType::kReadingCount;
  query.substation_key = "sub1";
  query.sensor_key = "ltc_gas_000";
  query.recent_start_micros = now - 5000000;
  query.recent_end_micros = now + 1;  // include the ts == now reading
  query.past_start_micros = 0;
  query.past_end_micros = 1;

  QueryExecutor executor(db_.get());
  auto result = executor.Execute(query).ValueOrDie();
  EXPECT_EQ(result.recent.count, 10u);  // neighbour not counted
}

}  // namespace
}  // namespace iot
}  // namespace iotdb
