// Steady-state analysis over synthetic timelines: CoV and drift
// thresholds, partial-tail exclusion, and dip attribution.
#include "iot/run_timeline.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "iot/rules.h"

namespace iotdb {
namespace iot {
namespace {

obs::TimelineInterval MakeInterval(uint64_t start_micros,
                                   uint64_t duration_micros,
                                   uint64_t ingest_kvps) {
  obs::TimelineInterval interval;
  interval.start_micros = start_micros;
  interval.end_micros = start_micros + duration_micros;
  interval.delta.counters["driver.ingest.kvps"] = ingest_kvps;
  return interval;
}

obs::Timeline MakeTimeline(const std::vector<uint64_t>& per_second_kvps) {
  obs::Timeline timeline;
  timeline.cadence_micros = 1'000'000;
  uint64_t t = 0;
  for (uint64_t kvps : per_second_kvps) {
    timeline.intervals.push_back(MakeInterval(t, 1'000'000, kvps));
    t += 1'000'000;
  }
  return timeline;
}

TEST(RunTimelineTest, EmptyTimelineYieldsNoAnalysis) {
  RunTimelineAnalysis analysis = AnalyzeRunTimeline({}, {});
  EXPECT_EQ(analysis.intervals_analyzed, 0u);
  EXPECT_FALSE(analysis.warmup_compared);
  EXPECT_TRUE(analysis.dips.empty());
}

TEST(RunTimelineTest, SteadyRunPassesBothGates) {
  obs::Timeline measured =
      MakeTimeline({1000, 1020, 990, 1010, 1000, 995, 1005, 1000});
  obs::Timeline warmup = MakeTimeline({980, 1010, 1000, 1005});
  RunTimelineAnalysis analysis = AnalyzeRunTimeline(warmup, measured);
  EXPECT_EQ(analysis.intervals_analyzed, 8u);
  EXPECT_NEAR(analysis.mean_ingest_rate, 1002.5, 1.0);
  EXPECT_LT(analysis.ingest_rate_cov, 0.05);
  EXPECT_TRUE(analysis.cov_ok);
  EXPECT_TRUE(analysis.warmup_compared);
  EXPECT_TRUE(analysis.drift_ok);
  EXPECT_TRUE(analysis.dips.empty());
}

TEST(RunTimelineTest, PartialTailIntervalIsExcluded) {
  obs::Timeline measured = MakeTimeline({1000, 1000, 1000});
  // Stop() flushed a 0.2 s tail: too short to carry a rate estimate.
  measured.intervals.push_back(MakeInterval(3'000'000, 200'000, 50));
  RunTimelineAnalysis analysis = AnalyzeRunTimeline({}, measured);
  EXPECT_EQ(analysis.intervals_analyzed, 3u);
  EXPECT_NEAR(analysis.mean_ingest_rate, 1000.0, 0.01);
  // The 250 kvps/s tail rate must not have entered the CoV either.
  EXPECT_NEAR(analysis.ingest_rate_cov, 0.0, 1e-9);
}

TEST(RunTimelineTest, HighVarianceWarnsOnCov) {
  obs::Timeline measured =
      MakeTimeline({2000, 200, 2000, 200, 2000, 200, 2000, 200});
  RunTimelineAnalysis analysis = AnalyzeRunTimeline({}, measured);
  EXPECT_GT(analysis.ingest_rate_cov, Rules::kMaxSteadyStateCov);
  EXPECT_FALSE(analysis.cov_ok);
}

TEST(RunTimelineTest, WarmupDriftWarnsWhenRampStillClimbing) {
  // Warmup ran at half the measured rate: the system was still warming.
  obs::Timeline warmup = MakeTimeline({500, 500, 500, 500});
  obs::Timeline measured = MakeTimeline({1000, 1000, 1000, 1000});
  RunTimelineAnalysis analysis = AnalyzeRunTimeline(warmup, measured);
  ASSERT_TRUE(analysis.warmup_compared);
  EXPECT_NEAR(analysis.warmup_drift, 0.5, 1e-9);
  EXPECT_FALSE(analysis.drift_ok);
}

TEST(RunTimelineTest, NoWarmupTimelineSkipsComparison) {
  obs::Timeline measured = MakeTimeline({1000, 1000, 1000, 1000});
  RunTimelineAnalysis analysis = AnalyzeRunTimeline({}, measured);
  EXPECT_FALSE(analysis.warmup_compared);
  EXPECT_DOUBLE_EQ(analysis.warmup_drift, 0.0);
  EXPECT_TRUE(analysis.drift_ok);
}

TEST(RunTimelineTest, DipCarriesCoincidentActivity) {
  obs::Timeline measured =
      MakeTimeline({1000, 1000, 1000, 1000, 1000, 1000, 1000});
  obs::TimelineInterval dip = MakeInterval(7'000'000, 1'000'000, 100);
  dip.delta.counters["storage.write.stall_micros"] = 800'000;
  dip.delta.counters["storage.compaction.bytes_read"] = 4'000'000;
  dip.delta.counters["storage.compaction.bytes_written"] = 2'000'000;
  dip.delta.counters["storage.memtable.bytes_flushed"] = 1'000'000;
  dip.delta.gauges["cluster.hints.queue_depth"] = 321;
  measured.intervals.push_back(dip);

  RunTimelineAnalysis analysis = AnalyzeRunTimeline({}, measured);
  ASSERT_EQ(analysis.dips.size(), 1u);
  const TimelineDip& found = analysis.dips[0];
  EXPECT_EQ(found.interval_index, 7u);
  EXPECT_NEAR(found.ingest_rate, 100.0, 0.01);
  EXPECT_NEAR(found.fraction_of_median, 0.1, 1e-6);
  EXPECT_EQ(found.stall_micros, 800'000u);
  EXPECT_EQ(found.compaction_bytes, 6'000'000u);
  EXPECT_EQ(found.flush_bytes, 1'000'000u);
  EXPECT_EQ(found.hint_queue_depth, 321);
}

}  // namespace
}  // namespace iot
}  // namespace iotdb
