// Simulation-harness tests: the paper's qualitative shapes must hold for
// the calibrated model, and the cache round trip must be faithful.
#include "iot/experiments.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "iot/driver_host_model.h"
#include "iot/rules.h"

namespace iotdb {
namespace iot {
namespace {

ExperimentConfig QuickConfig(int nodes, int substations) {
  ExperimentConfig config;
  config.nodes = nodes;
  config.substations = substations;
  config.total_kvps = PaperRowsFor(substations);
  config.scale_divisor = 100;  // fast
  return config;
}

TEST(ExperimentTest, IngestsEveryKvp) {
  ExperimentResult r = RunExperiment(QuickConfig(8, 4));
  EXPECT_EQ(r.measured.kvps_ingested,
            PaperRowsFor(4) / 100);
  EXPECT_EQ(r.warmup.kvps_ingested, r.measured.kvps_ingested);
  EXPECT_GT(r.measured.elapsed_seconds, 0.0);
  EXPECT_EQ(r.measured.driver_seconds.size(), 4u);
}

TEST(ExperimentTest, QueriesFollowTheCadence) {
  ExperimentResult r = RunExperiment(QuickConfig(8, 2));
  uint64_t kvps = r.measured.kvps_ingested;
  // 5 queries per 10,000 readings per substation.
  uint64_t expected =
      (kvps / 2 / Rules::kReadingsPerQueryBatch) * 5 * 2;
  EXPECT_NEAR(static_cast<double>(r.measured.queries),
              static_cast<double>(expected), expected * 0.01 + 10);
}

TEST(ExperimentTest, NodeCountInversionAtOneSubstation) {
  // Paper Fig. 16: with one substation the 2-node cluster outperforms the
  // 8-node cluster (per-node fan-out costs dominate).
  double x2 = RunExperiment(QuickConfig(2, 1)).SystemIoTps();
  double x8 = RunExperiment(QuickConfig(8, 1)).SystemIoTps();
  EXPECT_GT(x2, 1.5 * x8);
}

TEST(ExperimentTest, EightNodePeakBeatsTwoNodePeak) {
  double x2 = RunExperiment(QuickConfig(2, 32)).SystemIoTps();
  double x8 = RunExperiment(QuickConfig(8, 32)).SystemIoTps();
  EXPECT_GT(x8, 1.3 * x2);
}

TEST(ExperimentTest, SuperLinearThenSaturating) {
  double x1 = RunExperiment(QuickConfig(8, 1)).SystemIoTps();
  double x2 = RunExperiment(QuickConfig(8, 2)).SystemIoTps();
  double x32 = RunExperiment(QuickConfig(8, 32)).SystemIoTps();
  double x48 = RunExperiment(QuickConfig(8, 48)).SystemIoTps();
  EXPECT_GT(x2 / x1, 2.0) << "S_2 must be super-linear";
  EXPECT_LT(x48 / x1, 48.0) << "S_48 must be sub-linear";
  EXPECT_LT(std::abs(x48 - x32) / x32, 0.15)
      << "throughput saturates between 32 and 48 substations";
}

TEST(ExperimentTest, PerSensorFloorCrossedNear48) {
  ExperimentResult r32 = RunExperiment(QuickConfig(8, 32));
  ExperimentResult r48 = RunExperiment(QuickConfig(8, 48));
  EXPECT_GE(r32.PerSensorIoTps(), Rules::kMinPerSensorRate);
  EXPECT_LT(r48.PerSensorIoTps(), 1.2 * Rules::kMinPerSensorRate);
  EXPECT_GT(r32.PerSensorIoTps(), r48.PerSensorIoTps());
}

TEST(ExperimentTest, LoadImbalanceGrowsWithSubstations) {
  ExperimentResult r4 = RunExperiment(QuickConfig(8, 4));
  ExperimentResult r48 = RunExperiment(QuickConfig(8, 48));
  double gap4 = (r4.MaxDriverSeconds() - r4.MinDriverSeconds()) /
                r4.MinDriverSeconds();
  double gap48 = (r48.MaxDriverSeconds() - r48.MinDriverSeconds()) /
                 r48.MinDriverSeconds();
  EXPECT_GT(gap48, gap4);
  EXPECT_GT(gap48, 0.2);
}

TEST(ExperimentTest, RoundRobinPlacementShrinksImbalance) {
  ExperimentConfig config = QuickConfig(8, 48);
  ExperimentResult hashed = RunExperiment(config);
  config.profile.placement = HardwareProfile::Placement::kRoundRobin;
  ExperimentResult balanced = RunExperiment(config);
  double gap_hashed =
      (hashed.MaxDriverSeconds() - hashed.MinDriverSeconds()) /
      hashed.MinDriverSeconds();
  double gap_balanced =
      (balanced.MaxDriverSeconds() - balanced.MinDriverSeconds()) /
      balanced.MinDriverSeconds();
  EXPECT_LT(gap_balanced, gap_hashed);
}

TEST(ExperimentTest, DisablingGroupCommitKillsSuperLinearity) {
  ExperimentConfig config = QuickConfig(8, 1);
  config.profile.amortize_wal_sync = false;
  double x1 = RunExperiment(config).SystemIoTps();
  config.substations = 2;
  config.total_kvps = PaperRowsFor(2);
  double x2 = RunExperiment(config).SystemIoTps();
  EXPECT_LT(x2 / x1, 2.2) << "without amortisation scaling is ~linear";
}

TEST(ExperimentTest, QueryTailsAppearUnderLoad) {
  // At paper scale the stalls produce >1s maxima from 4 substations on;
  // at divisor 100 we still see the queueing-driven inflation at 16.
  ExperimentConfig config = QuickConfig(8, 16);
  config.scale_divisor = 20;
  ExperimentResult r = RunExperiment(config);
  EXPECT_GT(r.measured.query_latency.max_us, 500000u);
  EXPECT_GT(r.measured.query_latency.CoV(), 1.0);
  EXPECT_GT(r.measured.query_latency.min_us, 1000u);
}

TEST(ExperimentTest, CacheRoundTripsResults) {
  std::vector<ExperimentResult> results;
  results.push_back(RunExperiment(QuickConfig(8, 2)));
  results.push_back(RunExperiment(QuickConfig(8, 4)));

  std::string path = "/tmp/iotdb_test_cache.txt";
  ASSERT_TRUE(SaveResultsCache(path, results).ok());
  auto loaded = LoadResultsCache(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& restored = loaded.ValueOrDie();
  ASSERT_EQ(restored.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(restored[i].config.substations, results[i].config.substations);
    EXPECT_EQ(restored[i].measured.kvps_ingested,
              results[i].measured.kvps_ingested);
    EXPECT_NEAR(restored[i].measured.elapsed_seconds,
                results[i].measured.elapsed_seconds, 1e-3);
    EXPECT_EQ(restored[i].measured.query_latency.count,
              results[i].measured.query_latency.count);
    EXPECT_EQ(restored[i].measured.driver_seconds.size(),
              results[i].measured.driver_seconds.size());
  }
  remove(path.c_str());
}

TEST(ExperimentTest, CacheMissReturnsNotFound) {
  EXPECT_TRUE(LoadResultsCache("/tmp/definitely_not_here_12345")
                  .status()
                  .IsNotFound());
}

TEST(DriverHostModelTest, MatchesPaperAnchors) {
  DriverHostProfile profile;
  GenerationPoint one = ModelGenerationPoint(profile, 1);
  EXPECT_NEAR(one.kvps_per_sec, 120000, 15000);
  EXPECT_NEAR(one.cpu_percent, 4.0, 2.0);

  GenerationPoint peak = ModelGenerationPoint(profile, 32);
  EXPECT_NEAR(peak.kvps_per_sec, 1100000, 150000);
  EXPECT_NEAR(peak.cpu_percent, 75.0, 12.0);

  GenerationPoint overloaded = ModelGenerationPoint(profile, 64);
  EXPECT_LT(overloaded.kvps_per_sec, peak.kvps_per_sec);
  EXPECT_NEAR(overloaded.cpu_percent, 100.0, 5.0);
}

TEST(DriverHostModelTest, SweepIsConcaveWithPeakNear32) {
  auto sweep = ModelGenerationSweep(DriverHostProfile());
  double best = 0;
  int best_drivers = 0;
  for (const auto& point : sweep) {
    if (point.kvps_per_sec > best) {
      best = point.kvps_per_sec;
      best_drivers = point.drivers;
    }
  }
  EXPECT_GE(best_drivers, 16);
  EXPECT_LE(best_drivers, 48);
}

TEST(DriverHostModelTest, RealGenerationRateIsMeasurable) {
  double rate = MeasureGenerationRate(50);
  EXPECT_GT(rate, 10000.0) << "C++ generator should exceed 10k kvps/s";
}

}  // namespace
}  // namespace iot
}  // namespace iotdb
