#include <gtest/gtest.h>

#include <string>

#include "common/crc32c.h"
#include "common/md5.h"

namespace iotdb {
namespace {

// Known-answer tests against the CRC32C reference vectors (RFC 3720).
TEST(Crc32cTest, KnownVectors) {
  char zeros[32];
  memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aaU);

  char ones[32];
  memset(ones, 0xff, sizeof(ones));
  EXPECT_EQ(crc32c::Value(ones, sizeof(ones)), 0x62a8ab43U);

  char ascending[32];
  for (int i = 0; i < 32; i++) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(ascending, sizeof(ascending)), 0x46dd794eU);
}

TEST(Crc32cTest, DistinguishesValues) {
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("foo", 3));
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("b", 1));
}

TEST(Crc32cTest, ExtendEqualsConcatenation) {
  std::string hello = "hello ";
  std::string world = "world";
  std::string both = hello + world;
  EXPECT_EQ(crc32c::Value(both.data(), both.size()),
            crc32c::Extend(crc32c::Value(hello.data(), hello.size()),
                           world.data(), world.size()));
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

// RFC 1321 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::HexDigest(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::HexDigest("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::HexDigest("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::HexDigest("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::HexDigest("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::HexDigest("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                     "0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      Md5::HexDigest("1234567890123456789012345678901234567890123456789012"
                     "3456789012345678901234567890"),
      "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, StreamingMatchesOneShot) {
  std::string data(100000, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 131 + 7);
  }
  Md5 streaming;
  // Feed in uneven chunks crossing the 64-byte block boundary many ways.
  size_t pos = 0;
  size_t chunk = 1;
  while (pos < data.size()) {
    size_t n = std::min(chunk, data.size() - pos);
    streaming.Update(data.data() + pos, n);
    pos += n;
    chunk = (chunk * 3 + 1) % 200 + 1;
  }
  auto digest = streaming.Finish();

  std::string one_shot_hex = Md5::HexDigest(data);
  static const char kHex[] = "0123456789abcdef";
  std::string streaming_hex;
  for (uint8_t b : digest) {
    streaming_hex.push_back(kHex[b >> 4]);
    streaming_hex.push_back(kHex[b & 0xf]);
  }
  EXPECT_EQ(streaming_hex, one_shot_hex);
}

}  // namespace
}  // namespace iotdb
