#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace iotdb {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xffu, 0x10000u, 0xdeadbeefu, 0xffffffffu}) {
    std::string s;
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v :
       std::vector<uint64_t>{0, 1, 0xffffffff, 0x123456789abcdef0ull,
                             std::numeric_limits<uint64_t>::max()}) {
    std::string s;
    PutFixed64(&s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(DecodeFixed64(s.data()), v);
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t shift = 0; shift < 32; ++shift) {
    values.push_back(1u << shift);
    values.push_back((1u << shift) - 1);
  }
  values.push_back(std::numeric_limits<uint32_t>::max());
  for (uint32_t v : values) PutVarint32(&s, v);

  Slice input(s);
  for (uint32_t expected : values) {
    uint32_t actual;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(actual, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384};
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ull << shift);
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  for (uint64_t v : values) PutVarint64(&s, v);

  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(actual, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : std::vector<uint64_t>{
           0, 127, 128, 16383, 16384, (1ull << 40),
           std::numeric_limits<uint64_t>::max()}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string s;
  PutVarint32(&s, 1u << 30);  // multi-byte encoding
  Slice truncated(s.data(), s.size() - 1);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&truncated, &v));
}

TEST(CodingTest, MalformedOverlongVarint32Fails) {
  // Five bytes with continuation bits forever.
  std::string s = "\xff\xff\xff\xff\xff\xff";
  Slice input(s);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, "hello");
  PutLengthPrefixedSlice(&s, "");
  PutLengthPrefixedSlice(&s, std::string(300, 'z'));

  Slice input(s);
  Slice value;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &value));
  EXPECT_EQ(value.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &value));
  EXPECT_TRUE(value.empty());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &value));
  EXPECT_EQ(value.size(), 300u);
}

TEST(CodingTest, LengthPrefixTruncatedBodyFails) {
  std::string s;
  PutVarint32(&s, 10);
  s += "abc";  // body shorter than declared
  Slice input(s);
  Slice value;
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &value));
}

TEST(CodingTest, BigEndian64PreservesOrder) {
  std::vector<uint64_t> values = {0, 1, 255, 256, 1ull << 32,
                                  std::numeric_limits<uint64_t>::max()};
  std::string prev;
  for (uint64_t v : values) {
    std::string encoded;
    PutBigEndian64(&encoded, v);
    EXPECT_EQ(DecodeBigEndian64(encoded.data()), v);
    if (!prev.empty()) {
      EXPECT_LT(prev, encoded) << "lexicographic order must match numeric";
    }
    prev = encoded;
  }
}

}  // namespace
}  // namespace iotdb
