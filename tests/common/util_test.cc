// Tests for Slice, Random, Histogram, Properties, Arena, ThreadPool,
// RateLimiter, and the clocks.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "common/arena.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/properties.h"
#include "common/random.h"
#include "common/rate_limiter.h"
#include "common/slice.h"
#include "common/thread_pool.h"

namespace iotdb {
namespace {

TEST(SliceTest, Basics) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_TRUE(Slice("ab") < Slice("abc"));
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("substation.sensor").starts_with("substation"));
  EXPECT_FALSE(Slice("sub").starts_with("substation"));
}

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, ExponentialHasRequestedMean) {
  Random rng(11);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(13);
  double sum = 0, sq = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RandomTest, PrintableStringIsPrintable) {
  Random rng(17);
  std::string s = rng.RandomPrintableString(500);
  ASSERT_EQ(s.size(), 500u);
  for (char c : s) {
    EXPECT_TRUE(isalnum(static_cast<unsigned char>(c)));
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.StdDev(), 28.866, 0.01);
  EXPECT_NEAR(h.Percentile(50), 50.5, 3.0);
  EXPECT_NEAR(h.Percentile(95), 95, 5.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
  EXPECT_EQ(h.CoefficientOfVariation(), 0.0);
}

TEST(HistogramTest, MergeEqualsCombined) {
  Histogram a, b, combined;
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(100000);
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
}

TEST(HistogramTest, CoefficientOfVariationDetectsSpread) {
  Histogram tight;
  for (int i = 0; i < 100; ++i) tight.Add(1000);
  EXPECT_NEAR(tight.CoefficientOfVariation(), 0.0, 1e-9);

  // Mostly-fast with rare huge outliers: CoV > 1 (the Fig. 14 situation).
  Histogram heavy;
  for (int i = 0; i < 99; ++i) heavy.Add(10);
  heavy.Add(100000);
  EXPECT_GT(heavy.CoefficientOfVariation(), 1.0);
}

TEST(PropertiesTest, ParseAndTypedAccess) {
  Properties props;
  ASSERT_TRUE(props
                  .ParseText("# comment\n"
                             "recordcount=1000\n"
                             "  padded.key  =  padded value  \n"
                             "ratio: 0.75\n"
                             "flag=true\n"
                             "! another comment\n")
                  .ok());
  EXPECT_EQ(props.Get("recordcount"), "1000");
  EXPECT_EQ(props.Get("padded.key"), "padded value");
  EXPECT_EQ(props.GetInt("recordcount", 0).ValueOrDie(), 1000);
  EXPECT_DOUBLE_EQ(props.GetDouble("ratio", 0).ValueOrDie(), 0.75);
  EXPECT_TRUE(props.GetBool("flag", false).ValueOrDie());
  EXPECT_EQ(props.GetInt("missing", 42).ValueOrDie(), 42);
}

TEST(PropertiesTest, BadValuesAreErrors) {
  Properties props;
  ASSERT_TRUE(props.ParseText("n=abc\nb=maybe\n").ok());
  EXPECT_FALSE(props.GetInt("n", 0).ok());
  EXPECT_FALSE(props.GetBool("b", false).ok());
}

TEST(PropertiesTest, MissingSeparatorIsError) {
  Properties props;
  EXPECT_FALSE(props.ParseText("justakeynovalue\n").ok());
}

TEST(PropertiesTest, RoundTripThroughText) {
  Properties props;
  props.Set("b", "2");
  props.Set("a", "1");
  Properties reparsed;
  ASSERT_TRUE(reparsed.ParseText(props.ToText()).ok());
  EXPECT_EQ(reparsed.map(), props.map());
}

TEST(ArenaTest, AllocationsAreUsableAndCounted) {
  Arena arena;
  char* p = arena.Allocate(100);
  memset(p, 0xab, 100);
  EXPECT_GE(arena.MemoryUsage(), 100u);

  // Large allocation gets its own block.
  char* big = arena.Allocate(100000);
  memset(big, 0xcd, 100000);
  EXPECT_GE(arena.MemoryUsage(), 100100u);
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  arena.Allocate(1);  // misalign the bump pointer
  for (int i = 0; i < 100; ++i) {
    char* p = arena.AllocateAligned(24);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
    arena.Allocate(1 + i % 3);
  }
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter++; }));
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ManualClockTest, AdvancesOnDemand) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000u);
  clock.Advance(500);
  EXPECT_EQ(clock.NowMicros(), 1500u);
  clock.SleepMicros(250);
  EXPECT_EQ(clock.NowMicros(), 1750u);
  EXPECT_EQ(clock.PosixSeconds(), 0u);  // 1750 us
}

TEST(RealClockTest, IsMonotonic) {
  Clock* clock = Clock::Real();
  uint64_t a = clock->NowMicros();
  uint64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

TEST(RateLimiterTest, ThrottlesWithManualClock) {
  ManualClock clock;
  RateLimiter limiter(100.0, 10.0, &clock);  // 100/s, burst 10

  // Burst drains immediately.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_FALSE(limiter.TryAcquire());

  // 50 ms refills 5 permits.
  clock.Advance(50000);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_FALSE(limiter.TryAcquire());
}

TEST(RateLimiterTest, WaitTimeEstimatesDeficit) {
  ManualClock clock;
  RateLimiter limiter(1000.0, 1.0, &clock);
  EXPECT_TRUE(limiter.TryAcquire());
  uint64_t wait = limiter.WaitTimeMicros();
  EXPECT_GT(wait, 0u);
  EXPECT_LE(wait, 1000u);  // one permit at 1000/s = 1ms
}

TEST(RateLimiterTest, BlockingAcquireAdvancesManualClock) {
  ManualClock clock;
  RateLimiter limiter(1000.0, 1.0, &clock);
  limiter.Acquire();          // consumes the burst
  limiter.Acquire();          // must wait ~1ms of virtual time
  EXPECT_GE(clock.NowMicros(), 900u);
}

}  // namespace
}  // namespace iotdb
