#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace iotdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), Status::Code::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO error: disk on fire");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::FailedCheck("x").IsFailedCheck());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad block");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad block");
  EXPECT_TRUE(s.IsCorruption());  // source untouched
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::Busy("later");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsBusy());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    IOTDB_RETURN_NOT_OK(Status::IOError("inner"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIOError());

  auto succeeds = []() -> Status {
    IOTDB_RETURN_NOT_OK(Status::OK());
    return Status::Corruption("reached");
  };
  EXPECT_TRUE(succeeds().IsCorruption());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveValueUnsafeMovesOut) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string value = std::move(r).MoveValueUnsafe();
  EXPECT_EQ(value.size(), 1000u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner_fail = []() -> Result<int> { return Status::IOError("io"); };
  auto inner_ok = []() -> Result<int> { return 7; };

  auto outer = [&](bool fail) -> Status {
    if (fail) {
      IOTDB_ASSIGN_OR_RETURN(int v, inner_fail());
      (void)v;
    } else {
      IOTDB_ASSIGN_OR_RETURN(int v, inner_ok());
      EXPECT_EQ(v, 7);
    }
    return Status::OK();
  };
  EXPECT_TRUE(outer(true).IsIOError());
  EXPECT_TRUE(outer(false).ok());
}

}  // namespace
}  // namespace iotdb
