#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.h"

namespace iotdb {
namespace sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) sim.Schedule(1, recurse);
  };
  sim.Schedule(1, recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { fired++; });
  sim.Schedule(100, [&] { fired++; });
  EXPECT_TRUE(sim.RunUntil(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50u);
  EXPECT_FALSE(sim.RunUntil(200));  // queue drains
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    fired++;
    sim.Stop();
  });
  sim.Schedule(2, [&] { fired++; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(ResourceTest, SingleServerSerializesJobs) {
  Simulator sim;
  Resource server(&sim, 1);
  std::vector<Time> completions;
  for (int i = 0; i < 3; ++i) {
    server.Process(10, [&](Time) { completions.push_back(sim.Now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<Time>{10, 20, 30}));
  EXPECT_EQ(server.jobs_completed(), 3u);
  EXPECT_DOUBLE_EQ(server.Utilization(), 1.0);
}

TEST(ResourceTest, MultiServerRunsConcurrently) {
  Simulator sim;
  Resource server(&sim, 3);
  std::vector<Time> completions;
  for (int i = 0; i < 3; ++i) {
    server.Process(10, [&](Time) { completions.push_back(sim.Now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<Time>{10, 10, 10}));
}

TEST(ResourceTest, QueueDelayIsReported) {
  Simulator sim;
  Resource server(&sim, 1);
  Time first_delay = 999, second_delay = 999;
  server.Process(10, [&](Time d) { first_delay = d; });
  server.Process(10, [&](Time d) { second_delay = d; });
  sim.Run();
  EXPECT_EQ(first_delay, 0u);
  EXPECT_EQ(second_delay, 10u);
}

TEST(ResourceTest, StealServersBlocksService) {
  Simulator sim;
  Resource server(&sim, 1);
  server.StealServers(1, 100);  // stall for 100us
  Time done_at = 0;
  sim.Schedule(1, [&] {
    server.Process(10, [&](Time) { done_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(done_at, 110u);  // waits out the stall
}

TEST(BatchServerTest, SoloRequestPaysFullFixedCost) {
  Simulator sim;
  BatchServer wal(&sim, /*gather=*/5, /*fixed=*/100, /*per_item=*/1.0);
  Time done_at = 0;
  wal.Submit(10, [&] { done_at = sim.Now(); });
  sim.Run();
  // gather(5) + fixed(100) + 10 items.
  EXPECT_EQ(done_at, 115u);
  EXPECT_EQ(wal.commits(), 1u);
}

TEST(BatchServerTest, ConcurrentRequestsShareOneCommit) {
  Simulator sim;
  BatchServer wal(&sim, 5, 100, 1.0);
  int committed = 0;
  for (int i = 0; i < 4; ++i) {
    wal.Submit(10, [&] { committed++; });
  }
  sim.Run();
  EXPECT_EQ(committed, 4);
  EXPECT_EQ(wal.commits(), 1u);  // one group commit for all four
  EXPECT_DOUBLE_EQ(wal.MeanBatchItems(), 40.0);
}

TEST(BatchServerTest, ArrivalsDuringCommitFormNextBatch) {
  Simulator sim;
  BatchServer wal(&sim, 5, 100, 1.0);
  std::vector<Time> completions;
  wal.Submit(10, [&] { completions.push_back(sim.Now()); });
  // Arrives while the first commit is in flight (t=50 < 115).
  sim.Schedule(50, [&] {
    wal.Submit(10, [&] { completions.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 115u);
  // Second commit starts right after the first: 115 + 100 + 10.
  EXPECT_EQ(completions[1], 225u);
  EXPECT_EQ(wal.commits(), 2u);
}

}  // namespace
}  // namespace sim
}  // namespace iotdb
