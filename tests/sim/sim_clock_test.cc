#include "sim/sim_clock.h"

#include <gtest/gtest.h>

#include "iot/data_generator.h"

namespace iotdb {
namespace sim {
namespace {

TEST(SimClockTest, TracksSimulatorTime) {
  Simulator sim;
  SimClock clock(&sim);
  EXPECT_EQ(clock.NowMicros(), 0u);
  sim.Schedule(150, [] {});
  sim.Run();
  EXPECT_EQ(clock.NowMicros(), 150u);
}

TEST(SimClockTest, SleepAdvancesVirtualTime) {
  Simulator sim;
  SimClock clock(&sim);
  int fired = 0;
  sim.Schedule(100, [&] { fired++; });
  clock.SleepMicros(250);
  EXPECT_EQ(clock.NowMicros(), 250u);
  EXPECT_EQ(fired, 1);  // the pending event ran during the sleep
}

TEST(SimClockTest, DrivesClockBasedComponents) {
  // The TPCx-IoT generator stamps readings from any Clock — including a
  // simulated one.
  Simulator sim;
  SimClock clock(&sim);
  iot::DataGenerator generator("simsub", 10, 7, &clock);
  sim.Schedule(5000, [] {});
  sim.Run();
  iot::Reading reading = generator.NextReading();
  EXPECT_GE(reading.timestamp_micros, 5000u);
}

}  // namespace
}  // namespace sim
}  // namespace iotdb
